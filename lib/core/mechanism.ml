module IntSet = Set.Make (Int)

module Make (Op : Agg.Operator.S) = struct
  type msg =
    | Probe
    | Response of {
        x : Op.t;
        flag : bool;
        cut : int list;  (* unreachable subtree roots behind the sender *)
        wlog : Op.t Ghost.write list;
      }
    | Update of { x : Op.t; id : int; cut : int list; wlog : Op.t Ghost.write list }
    | Release of { ids : IntSet.t }
    | Hello of { epoch : int }  (* post-restart resynchronization *)

  let kind_of = function
    | Probe -> Simul.Kind.Probe
    | Response _ -> Simul.Kind.Response
    | Update _ -> Simul.Kind.Update
    | Release _ -> Simul.Kind.Release
    | Hello _ -> Simul.Kind.Hello

  (* Per-channel log of forwarded updates, replacing the paper's global
     [sntupdates] set.  Entry [j] records that the update received from
     this neighbour under [rcvids.(j)] was forwarded under [sntids.(j)].
     Both sequences are strictly increasing (FIFO receipt of a sender's
     monotone counter; [upcntr] is monotone), so [onrelease] can locate
     the paper's beta by binary search instead of a linear scan, and
     entries whose [rcvid] can never again be the minimum of [uaw] are
     pruned from the front ([start]).  [pruned_hi] remembers the largest
     pruned [sntid]: a released window reaching at most that far is known
     to be fully consumed without consulting the (gone) entries. *)
  type sntlog = {
    mutable rcvids : int array;
    mutable sntids : int array;
    mutable start : int;  (* first live entry *)
    mutable len : int;  (* one past the last live entry *)
    mutable pruned_hi : int;  (* largest pruned sntid; 0 if none *)
  }

  type node = {
    id : int;
    nbrs : int list;
    nbrs_arr : int array;  (* sorted ascending; slot i = i-th neighbour *)
    deg : int;  (* Array.length nbrs_arr *)
    self_pos : int;  (* # neighbours with id < self (requester order) *)
    mutable value : Op.t;  (* the paper's [val] *)
    (* Dense per-neighbour-slot lease state (the paper's taken[v],
       granted[v], aval[v], uaw[v]), with incrementally maintained
       cardinalities so tkn()/grntd()-style predicates are O(1). *)
    taken : bool array;
    mutable tkn_count : int;
    granted : bool array;
    mutable grntd_count : int;
    aval : Op.t array;
    mutable gval_cache : Op.t;  (* fold of value+avals when [not gval_dirty] *)
    mutable gval_dirty : bool;
    uaw : IntSet.t array;
    uaw_size : int array;
    (* Requester slots: 0..deg-1 = neighbours, deg = self. *)
    pndg : bool array;  (* deg+1 slots *)
    snt : bool array array;  (* requester slot -> mask over neighbour slots *)
    snt_count : int array;  (* popcount of each mask *)
    probed : int array;  (* per neighbour slot: # masks containing it *)
    mutable upcntr : int;
    sntlogs : sntlog array;  (* per neighbour slot *)
    policy : Policy.t;
    mutable view : Policy.view option;  (* built once, after allocation *)
    (* Crash/recovery state.  All of it is inert in fault-free runs:
       [alive] stays true, [down_count] 0, [any_cut] false, so every
       guard below reduces to the pre-fault behaviour. *)
    mutable alive : bool;
    mutable epoch : int;  (* incarnation, bumped on restart *)
    nbr_epoch : int array;  (* last epoch heard per neighbour slot; -1 none *)
    down : bool array;  (* per neighbour slot: known crashed *)
    mutable down_count : int;
    resync : bool array;  (* next probe to this slot is a recovery re-probe *)
    refresh : bool array;
    (* Slot recovered via Hello: when its next response arrives, push
       fresh updates to grantees so their caches (and cuts) heal. *)
    subcut : IntSet.t array;  (* per slot: unreachable roots it reported *)
    mutable any_cut : bool;  (* down_count > 0 or some subcut nonempty *)
    (* Pending local combines.  Continuations take the aggregate and the
       cut (unreachable subtree roots; [] on a full aggregate).
       [pending_spans] carries the matching telemetry span ids, in the
       same order; it stays [[]] (no per-combine allocation) when no
       sink is recording. *)
    mutable pending : (Op.t -> int list -> unit) list;
    mutable pending_spans : int list;
    (* Ghost state (Figure 6).  [gwrites] mirrors the write subsequence
       of [glog] in chronological order; [shipped.(i)] is the prefix of
       it already sent to neighbour slot [i], so outgoing wlogs carry
       only the unshipped suffix (FIFO channels + merge-on-receipt make
       the receiver's log a superset of every previously shipped
       prefix). *)
    mutable glog : Op.t Ghost.entry list;  (* reversed *)
    mutable gwrites : Op.t Ghost.write array;
    mutable gwrites_len : int;
    shipped : int array;
    last_write : int array;  (* per tree node: index of most recent write in glog, -1 if none *)
    mutable completed : int;  (* completed requests at this node *)
  }

  (* Pre-registered telemetry handles (see Simul.Network for the same
     pattern): one [match] on the option per instrumented site. *)
  type mech_tel = {
    lease_set : Telemetry.Metrics.counter;
    lease_break : Telemetry.Metrics.counter;
    lease_deny : Telemetry.Metrics.counter;
    update_fanout : Telemetry.Metrics.histogram;
    release_cascade : Telemetry.Metrics.histogram;
    ghost_log : Telemetry.Metrics.gauge; (* hwm = ghost write-log high-water *)
    recovery_reprobes : Telemetry.Metrics.counter;
    partial_combines : Telemetry.Metrics.counter;
  }

  type t = {
    tree : Tree.t;
    net : msg Simul.Network.t;
    nodes : node array;
    ghost : bool;
    tel : mech_tel option;
    sink : Telemetry.Sink.t;
    recording : bool; (* [Sink.enabled sink], cached for the hot path *)
    obs : bool; (* metrics or sink active: one hot-path branch *)
    clock : unit -> float; (* shared with the network *)
    spans : Telemetry.Span.allocator;
  }

  (* ------------------------------------------------------------------ *)
  (* Slot arithmetic.                                                   *)

  (* Position of neighbour [v] in [nbrs_arr], -1 if not a neighbour. *)
  let slot nd v =
    let a = nd.nbrs_arr in
    let lo = ref 0 and hi = ref (nd.deg - 1) and found = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let w = Array.unsafe_get a mid in
      if w = v then begin
        found := mid;
        lo := !hi + 1
      end
      else if w < v then lo := mid + 1
      else hi := mid - 1
    done;
    !found

  let self_slot nd = nd.deg

  (* Requester slots in ascending order of node id, self included at its
     sorted position — the iteration order of the old
     [IntSet.elements pndg] snapshot in T4. *)
  let iter_requester_slots nd f =
    for i = 0 to nd.self_pos - 1 do
      f i
    done;
    f nd.deg;
    for i = nd.self_pos to nd.deg - 1 do
      f i
    done

  let set_taken nd i flag =
    if nd.taken.(i) <> flag then begin
      nd.taken.(i) <- flag;
      nd.tkn_count <- (if flag then nd.tkn_count + 1 else nd.tkn_count - 1)
    end

  let set_granted nd i flag =
    if nd.granted.(i) <> flag then begin
      nd.granted.(i) <- flag;
      nd.grntd_count <- (if flag then nd.grntd_count + 1 else nd.grntd_count - 1)
    end

  (* ------------------------------------------------------------------ *)
  (* sntlog maintenance.                                                *)

  let sntlog_create () =
    { rcvids = [||]; sntids = [||]; start = 0; len = 0; pruned_hi = 0 }

  let sntlog_length sl = sl.len - sl.start

  let sntlog_append sl ~rcvid ~sntid =
    let cap = Array.length sl.rcvids in
    if sl.len = cap then begin
      let live = sl.len - sl.start in
      if sl.start > 0 && live * 2 <= cap then begin
        (* plenty of pruned slack at the front: compact in place *)
        Array.blit sl.rcvids sl.start sl.rcvids 0 live;
        Array.blit sl.sntids sl.start sl.sntids 0 live
      end
      else begin
        let ncap = max 8 (2 * cap) in
        let r = Array.make ncap 0 and s = Array.make ncap 0 in
        Array.blit sl.rcvids sl.start r 0 live;
        Array.blit sl.sntids sl.start s 0 live;
        sl.rcvids <- r;
        sl.sntids <- s
      end;
      sl.start <- 0;
      sl.len <- live
    end;
    sl.rcvids.(sl.len) <- rcvid;
    sl.sntids.(sl.len) <- sntid;
    sl.len <- sl.len + 1

  (* Drop the prefix of entries whose [rcvid] is no longer reachable by a
     future release window: once uaw[v] has been trimmed (or reset), any
     entry with [rcvid <= min uaw] — all of them when uaw is empty — can
     never again contribute a beta with a live effect, because a later
     release either lands past it ([pruned_hi] answers) or inside the
     remaining live entries. *)
  let sntlog_prune sl ~uaw_min =
    let keep_from =
      match uaw_min with
      | None -> sl.len
      | Some m ->
        let j = ref sl.start in
        while !j < sl.len && sl.rcvids.(!j) <= m do
          incr j
        done;
        !j
    in
    if keep_from > sl.start then begin
      sl.pruned_hi <- sl.sntids.(keep_from - 1);
      sl.start <- keep_from;
      if sl.start = sl.len then begin
        sl.start <- 0;
        sl.len <- 0
      end
    end

  let sntlog_clear sl =
    sl.start <- 0;
    sl.len <- 0;
    sl.pruned_hi <- 0

  (* ------------------------------------------------------------------ *)
  (* uaw maintenance (cached cardinality + sntlog co-pruning).          *)

  let uaw_reset nd i =
    nd.uaw.(i) <- IntSet.empty;
    nd.uaw_size.(i) <- 0;
    sntlog_prune nd.sntlogs.(i) ~uaw_min:None

  let uaw_add nd i id =
    let s = nd.uaw.(i) in
    if not (IntSet.mem id s) then begin
      nd.uaw.(i) <- IntSet.add id s;
      nd.uaw_size.(i) <- nd.uaw_size.(i) + 1
    end

  let uaw_set nd i s =
    nd.uaw.(i) <- s;
    nd.uaw_size.(i) <- IntSet.cardinal s;
    sntlog_prune nd.sntlogs.(i) ~uaw_min:(IntSet.min_elt_opt s)

  (* ------------------------------------------------------------------ *)
  (* Cut tracking: which subtree roots are unreachable.                 *)

  let up_count nd = nd.deg - nd.down_count

  let refresh_any_cut nd =
    let any = ref (nd.down_count > 0) in
    if not !any then
      for j = 0 to nd.deg - 1 do
        if not (IntSet.is_empty nd.subcut.(j)) then any := true
      done;
    nd.any_cut <- !any

  (* Unreachable subtree roots visible from [nd], excluding slot [excl]
     (the direction a report travels; -1 for a local combine): crashed
     neighbours contribute themselves, live ones their reported cut.
     [] — allocation-free — whenever [any_cut] is unset, i.e. always in
     fault-free runs. *)
  let cut_to nd excl =
    if not nd.any_cut then []
    else begin
      let s = ref IntSet.empty in
      for j = 0 to nd.deg - 1 do
        if j <> excl then
          if nd.down.(j) then s := IntSet.add nd.nbrs_arr.(j) !s
          else if not (IntSet.is_empty nd.subcut.(j)) then
            s := IntSet.union nd.subcut.(j) !s
      done;
      IntSet.elements !s
    end

  (* Adopt the cut a neighbour reported alongside a response/update (the
     latest report replaces the previous one for that subtree). *)
  let set_subcut nd i cut =
    match cut with
    | [] ->
      if not (IntSet.is_empty nd.subcut.(i)) then begin
        nd.subcut.(i) <- IntSet.empty;
        refresh_any_cut nd
      end
    | l ->
      nd.subcut.(i) <- IntSet.of_list l;
      nd.any_cut <- true

  (* ------------------------------------------------------------------ *)
  (* Views for the policy layer.                                        *)

  let node_view nd =
    match nd.view with
    | Some v -> v
    | None ->
      let v =
        {
          Policy.id = nd.id;
          nbrs = nd.nbrs;
          degree = nd.deg;
          is_taken =
            (fun w ->
              let i = slot nd w in
              i >= 0 && nd.taken.(i));
          is_granted =
            (fun w ->
              let i = slot nd w in
              i >= 0 && nd.granted.(i));
          iter_taken =
            (fun f ->
              for i = 0 to nd.deg - 1 do
                if nd.taken.(i) then f nd.nbrs_arr.(i)
              done);
          iter_granted =
            (fun f ->
              for i = 0 to nd.deg - 1 do
                if nd.granted.(i) then f nd.nbrs_arr.(i)
              done);
          tkn_count = (fun () -> nd.tkn_count);
          grntd_count = (fun () -> nd.grntd_count);
          other_grantee =
            (fun w ->
              nd.grntd_count > 1
              || nd.grntd_count = 1
                 && not
                      (let i = slot nd w in
                       i >= 0 && nd.granted.(i)));
          uaw_size =
            (fun w ->
              let i = slot nd w in
              if i >= 0 then nd.uaw_size.(i) else 0);
        }
      in
      nd.view <- Some v;
      v

  (* The paper's gval(): local value folded with all neighbour caches.
     Cached between writes; the recomputation folds in ascending slot
     order, exactly the old per-call fold, so cached and uncached values
     are bit-identical even for floats. *)
  let gval_of nd =
    if nd.gval_dirty then begin
      let x = ref nd.value in
      for i = 0 to nd.deg - 1 do
        x := Op.combine !x nd.aval.(i)
      done;
      nd.gval_cache <- !x;
      nd.gval_dirty <- false
    end;
    nd.gval_cache

  (* The paper's subval(w): gval() excluding the cache for [w] (given
     here by slot).  O(1) via the group inverse when the operator has
     one; otherwise the old fold, skipping slot [i]. *)
  let subval nd i =
    match Op.inverse with
    | Some sub -> sub (gval_of nd) nd.aval.(i)
    | None ->
      let x = ref nd.value in
      for j = 0 to nd.deg - 1 do
        if j <> i then x := Op.combine !x nd.aval.(j)
      done;
      !x

  (* ------------------------------------------------------------------ *)
  (* Ghost actions (Figure 6).                                          *)

  let gwrites_push nd w =
    let cap = Array.length nd.gwrites in
    if nd.gwrites_len = cap then begin
      let a = Array.make (max 16 (2 * cap)) w in
      Array.blit nd.gwrites 0 a 0 cap;
      nd.gwrites <- a
    end;
    nd.gwrites.(nd.gwrites_len) <- w;
    nd.gwrites_len <- nd.gwrites_len + 1

  (* Delta encoding: ship to neighbour slot [i] only the suffix of the
     write log it has not been sent yet.  Sound because channels are
     FIFO and the receiver merges every wlog it gets, so its log already
     contains each previously shipped prefix. *)
  let ghost_wlog_to t nd i =
    if not t.ghost then []
    else begin
      let start = nd.shipped.(i) and stop = nd.gwrites_len in
      nd.shipped.(i) <- stop;
      let acc = ref [] in
      for j = stop - 1 downto start do
        acc := nd.gwrites.(j) :: !acc
      done;
      !acc
    end

  let ghost_append_write t nd (w : Op.t Ghost.write) =
    if t.ghost then begin
      nd.glog <- Ghost.Write w :: nd.glog;
      gwrites_push nd w;
      nd.last_write.(w.wnode) <- w.windex;
      match t.tel with
      | None -> ()
      | Some tel -> Telemetry.Metrics.gauge_set tel.ghost_log nd.gwrites_len
    end

  (* log := log . (wlog_w - log): append the writes of the received wlog
     that are not yet in our log, preserving their order.  Every log
     holds, per origin, a prefix of that origin's write sequence (writes
     are indexed densely and merged in order), so membership is just an
     index comparison against [last_write]. *)
  let ghost_merge t nd wlog_w =
    if t.ghost then
      List.iter
        (fun (w : Op.t Ghost.write) ->
          if w.windex > nd.last_write.(w.wnode) then ghost_append_write t nd w)
        wlog_w

  let ghost_recentwrites t nd =
    if t.ghost then
      List.init (Tree.n_nodes t.tree) (fun u -> (u, nd.last_write.(u)))
    else []

  (* ------------------------------------------------------------------ *)
  (* Procedures of Figure 1.                                            *)

  let send t nd dst m = Simul.Network.send t.net ~src:nd.id ~dst m

  (* sendprobes(w): mark [w] pending and probe every neighbour whose
     subtree aggregate is neither leased ([taken]) nor already being
     probed ([probed], the paper's sntprobes() membership counter). *)
  let count_reprobe t nd i =
    if nd.resync.(i) then begin
      nd.resync.(i) <- false;
      match t.tel with
      | None -> ()
      | Some tel -> Telemetry.Metrics.incr tel.recovery_reprobes
    end

  let sendprobes t nd w =
    let r = if w = nd.id then self_slot nd else slot nd w in
    nd.pndg.(r) <- true;
    for i = 0 to nd.deg - 1 do
      let v = nd.nbrs_arr.(i) in
      if v <> w && (not nd.taken.(i)) && nd.probed.(i) = 0 && not nd.down.(i)
      then begin
        count_reprobe t nd i;
        send t nd v Probe
      end
    done

  (* Record the snt set for requester slot [r]: every neighbour slot not
     covered by a taken lease, except [exclude] (the requester itself,
     for probes from a neighbour; -1 for a local combine). *)
  let set_snt_mask nd r ~exclude =
    let mask = nd.snt.(r) in
    for i = 0 to nd.deg - 1 do
      if i <> exclude && (not nd.taken.(i)) && not nd.down.(i) then begin
        mask.(i) <- true;
        nd.snt_count.(r) <- nd.snt_count.(r) + 1;
        nd.probed.(i) <- nd.probed.(i) + 1
      end
    done

  (* forwardupdates(w, id): push fresh subtree aggregates to every
     grantee except [w]. *)
  let forwardupdates t nd w id =
    match t.tel with
    | None ->
      for i = 0 to nd.deg - 1 do
        let v = nd.nbrs_arr.(i) in
        if nd.granted.(i) && v <> w then
          send t nd v
            (Update
               {
                 x = subval nd i;
                 id;
                 cut = cut_to nd i;
                 wlog = ghost_wlog_to t nd i;
               })
      done
    | Some tel ->
      let fanout = ref 0 in
      for i = 0 to nd.deg - 1 do
        let v = nd.nbrs_arr.(i) in
        if nd.granted.(i) && v <> w then begin
          send t nd v
            (Update
               {
                 x = subval nd i;
                 id;
                 cut = cut_to nd i;
                 wlog = ghost_wlog_to t nd i;
               });
          incr fanout
        end
      done;
      Telemetry.Metrics.observe tel.update_fanout !fanout

  (* Out-of-line lease-lifecycle observers (see Simul.Network for the
     same pattern): hot paths pay one [t.obs] branch when telemetry is
     off. *)
  let observe_grant t nd w grant =
    (match t.tel with
    | None -> ()
    | Some tel ->
      Telemetry.Metrics.incr (if grant then tel.lease_set else tel.lease_deny));
    if t.recording then
      Telemetry.Sink.record t.sink
        (if grant then
           Telemetry.Sink.Lease_set
             { time = t.clock (); granter = nd.id; grantee = w }
         else
           Telemetry.Sink.Lease_denied
             { time = t.clock (); granter = nd.id; grantee = w })

  let observe_break t nd ~granter =
    (match t.tel with
    | None -> ()
    | Some tel -> Telemetry.Metrics.incr tel.lease_break);
    if t.recording then
      Telemetry.Sink.record t.sink
        (Telemetry.Sink.Lease_broken
           { time = t.clock (); granter; grantee = nd.id })

  (* sendresponse(w): answer a probe; grant a lease iff every other
     neighbour is covered by a taken lease and the policy agrees. *)
  let sendresponse t nd w =
    let i = slot nd w in
    (* every neighbour other than [w] that is still up holds a taken
       lease (crashed subtrees are excluded from coverage — their
       absence is reported via [cut] instead) *)
    let others_covered =
      nd.tkn_count - (if nd.taken.(i) then 1 else 0) = up_count nd - 1
    in
    if others_covered then begin
      let grant = nd.policy.set_lease (node_view nd) ~target:w in
      set_granted nd i grant;
      if t.obs then observe_grant t nd w grant
    end;
    let flag = nd.granted.(i) in
    send t nd w
      (Response
         {
           x = subval nd i;
           flag;
           cut = cut_to nd i;
           wlog = ghost_wlog_to t nd i;
         })

  let isgoodforrelease nd i =
    nd.grntd_count = 0 || (nd.grntd_count = 1 && nd.granted.(i))

  (* forwardrelease(): break every eligible taken lease the policy wants
     to drop, sending back the accumulated unacknowledged-update ids. *)
  let forwardrelease t nd =
    for i = 0 to nd.deg - 1 do
      if
        isgoodforrelease nd i && nd.taken.(i)
        && nd.policy.break_lease (node_view nd) ~target:nd.nbrs_arr.(i)
      then begin
        set_taken nd i false;
        send t nd nd.nbrs_arr.(i) (Release { ids = nd.uaw.(i) });
        uaw_reset nd i;
        (* The lease on neighbour [v]'s subtree was granted by [v] to
           this node; breaking it is the grantee's move. *)
        if t.obs then observe_break t nd ~granter:nd.nbrs_arr.(i)
      end
    done

  (* onrelease(w, S): trim each uaw[v] down to the update ids that were
     forwarded to [w] within the released window, then let the policy
     react, then try to propagate the release.

     The paper's beta — the earliest-received sntupdate forwarded at or
     after min S — is found by binary search: per channel, rcvids and
     sntids both increase, so the candidate set {sntid >= min S} is a
     suffix and its rcvid-minimum is its first element. *)
  let onrelease t nd w s =
    (match IntSet.min_elt_opt s with
    | None -> ()
    | Some id ->
      for i = 0 to nd.deg - 1 do
        if nd.nbrs_arr.(i) <> w && nd.taken.(i) then begin
          let sl = nd.sntlogs.(i) in
          let last =
            if sl.len > sl.start then sl.sntids.(sl.len - 1) else sl.pruned_hi
          in
          if last < id then
            (* A empty: every update from this neighbour was forwarded
               before the released window, i.e. consumed downstream by a
               combine — nothing left unaccounted. *)
            uaw_reset nd i
          else if id > sl.pruned_hi then begin
            (* beta is a live entry: first with sntid >= id. *)
            let lo = ref sl.start and hi = ref (sl.len - 1) in
            while !lo < !hi do
              let mid = (!lo + !hi) / 2 in
              if sl.sntids.(mid) >= id then hi := mid else lo := mid + 1
            done;
            let beta_rcvid = sl.rcvids.(!lo) in
            uaw_set nd i (IntSet.filter (fun j -> j >= beta_rcvid) nd.uaw.(i))
          end
          (* else beta fell in the pruned prefix: its rcvid was <= some
             earlier min uaw, so the filter {>= beta.rcvid} keeps all of
             uaw — a no-op. *)
        end
      done);
    for i = 0 to nd.deg - 1 do
      if nd.nbrs_arr.(i) <> w && nd.taken.(i) && isgoodforrelease nd i then
        nd.policy.release_policy (node_view nd) ~target:nd.nbrs_arr.(i)
    done;
    forwardrelease t nd

  let newid nd =
    nd.upcntr <- nd.upcntr + 1;
    nd.upcntr

  (* Completion of a local combine: log the matching gather (ghost) and
     fire every pending continuation with the global aggregate.

     With unreachable subtrees the aggregate is partial: the value
     covers only the reachable component and the continuation gets the
     cut (the roots of the missing subtrees).  Partial combines are a
     degraded read outside the consistency contract, so they are not
     ghost-logged and do not advance [completed] — the causal checker
     judges exact results only. *)
  let complete_combines t nd =
    let value = gval_of nd in
    let cut = cut_to nd (-1) in
    let exact = cut = [] in
    (if not exact then
       match t.tel with
       | None -> ()
       | Some tel -> Telemetry.Metrics.incr tel.partial_combines);
    let callbacks = List.rev nd.pending in
    let spans = List.rev nd.pending_spans in
    nd.pending <- [];
    nd.pending_spans <- [];
    let rec fire callbacks spans =
      match callbacks with
      | [] -> ()
      | k :: callbacks ->
        if exact then begin
          if t.ghost then
            nd.glog <-
              Ghost.Combine
                {
                  cnode = nd.id;
                  cindex = nd.completed;
                  cvalue = value;
                  crecent = ghost_recentwrites t nd;
                }
              :: nd.glog;
          nd.completed <- nd.completed + 1
        end;
        let spans =
          match spans with
          | [] -> []
          | span :: rest ->
            Telemetry.Span.finish t.sink ~clock:t.clock ~node:nd.id
              ~name:"combine" ~id:span;
            rest
        in
        k value cut;
        fire callbacks spans
    in
    fire callbacks spans

  (* ------------------------------------------------------------------ *)
  (* Transitions.                                                       *)

  (* T1: combine request at [nd]. *)
  let t1_combine t nd k =
    if t.recording then
      nd.pending_spans <-
        Telemetry.Span.start t.sink t.spans ~clock:t.clock ~node:nd.id
          ~name:"combine"
        :: nd.pending_spans;
    nd.pending <- k :: nd.pending;
    nd.policy.on_combine (node_view nd);
    for i = 0 to nd.deg - 1 do
      if nd.taken.(i) then uaw_reset nd i
    done;
    if not nd.pndg.(self_slot nd) then begin
      if nd.tkn_count = up_count nd then complete_combines t nd
      else begin
        sendprobes t nd nd.id;
        set_snt_mask nd (self_slot nd) ~exclude:(-1)
      end
    end

  (* T2: write request at [nd]. *)
  let t2_write t nd arg =
    if t.recording then
      Telemetry.Sink.record t.sink
        (Telemetry.Sink.Mark { time = t.clock (); node = nd.id; name = "write" });
    nd.value <- arg;
    nd.gval_dirty <- true;
    if t.ghost then
      ghost_append_write t nd
        { Ghost.wnode = nd.id; windex = nd.completed; warg = arg };
    nd.completed <- nd.completed + 1;
    nd.policy.on_write (node_view nd);
    if nd.grntd_count > 0 then begin
      let id = newid nd in
      forwardupdates t nd nd.id id
    end

  (* T3: receive probe from [w]. *)
  let t3_probe t nd w =
    nd.policy.probe_rcvd (node_view nd) ~from:w;
    for i = 0 to nd.deg - 1 do
      if nd.taken.(i) && nd.nbrs_arr.(i) <> w then uaw_reset nd i
    done;
    let r = slot nd w in
    if not nd.pndg.(r) then begin
      let missing =
        up_count nd - nd.tkn_count - (if nd.taken.(r) then 0 else 1)
      in
      if missing = 0 then sendresponse t nd w
      else begin
        sendprobes t nd w;
        set_snt_mask nd r ~exclude:r
      end
    end

  (* T4: receive response(x, flag, cut) from [w]. *)
  let t4_response t nd w x flag cut wlog_w =
    nd.policy.response_rcvd (node_view nd) ~flag ~from:w;
    let sw = slot nd w in
    nd.aval.(sw) <- x;
    nd.gval_dirty <- true;
    nd.resync.(sw) <- false;
    set_subcut nd sw cut;
    ghost_merge t nd wlog_w;
    set_taken nd sw flag;
    iter_requester_slots nd (fun r ->
        if nd.pndg.(r) && nd.snt.(r).(sw) then begin
          nd.snt.(r).(sw) <- false;
          nd.snt_count.(r) <- nd.snt_count.(r) - 1;
          nd.probed.(sw) <- nd.probed.(sw) - 1;
          if nd.snt_count.(r) = 0 then begin
            nd.pndg.(r) <- false;
            if r = self_slot nd then complete_combines t nd
            else sendresponse t nd nd.nbrs_arr.(r)
          end
        end);
    (* Recovery refresh: this response re-reads a subtree that went
       through a crash; grantees upstream still cache the pre-crash
       aggregate (or a cut excluding it), and no write will push it to
       them.  Re-originate an update, as a write would (T2). *)
    if nd.refresh.(sw) then begin
      nd.refresh.(sw) <- false;
      if nd.grntd_count > 0 then begin
        let id = newid nd in
        forwardupdates t nd w id
      end
    end

  (* T5: receive update(x, id, cut) from [w]. *)
  let t5_update t nd w x id cut wlog_w =
    nd.policy.update_rcvd (node_view nd) ~from:w;
    let sw = slot nd w in
    nd.aval.(sw) <- x;
    nd.gval_dirty <- true;
    set_subcut nd sw cut;
    ghost_merge t nd wlog_w;
    uaw_add nd sw id;
    let other_grantees =
      nd.grntd_count > 1 || (nd.grntd_count = 1 && not nd.granted.(sw))
    in
    if other_grantees then begin
      let nid = newid nd in
      sntlog_append nd.sntlogs.(sw) ~rcvid:id ~sntid:nid;
      forwardupdates t nd w nid
    end
    else forwardrelease t nd

  (* T6: receive release(S) from [w]. *)
  let t6_release t nd w s =
    nd.policy.release_rcvd (node_view nd) ~from:w;
    set_granted nd (slot nd w) false;
    match t.tel with
    | None -> onrelease t nd w s
    | Some tel ->
      (* Cascade width: releases this node forwards while handling one
         received release (chains of these per-hop forwards are the
         release cascades of a cooling subtree). *)
      let before = Simul.Network.total_of_kind t.net Simul.Kind.Release in
      onrelease t nd w s;
      Telemetry.Metrics.observe tel.release_cascade
        (Simul.Network.total_of_kind t.net Simul.Kind.Release - before)

  (* T7: receive hello(epoch) from [w] — the neighbour announces a new
     incarnation after a restart.  Any state involving its previous
     incarnation is void: leases both ways, its cached aggregate,
     unacknowledged updates, the forwarded-update log, its reported cut,
     and the shipped-ghost-prefix watermark (the session teardown may
     have eaten frames already marked shipped, so the full log is
     reshipped; the receiver's merge deduplicates).  Requests still
     pending here were counting on the old incarnation's lease or on its
     down-ness, so the fresh subtree is re-probed on their behalf.
     Reply with our own epoch so the handshake converges from either
     side (a repeated epoch is ignored, which terminates it). *)
  let t7_hello t nd w epoch =
    let i = slot nd w in
    if epoch > nd.nbr_epoch.(i) then begin
      nd.nbr_epoch.(i) <- epoch;
      if nd.down.(i) then begin
        nd.down.(i) <- false;
        nd.down_count <- nd.down_count - 1;
        refresh_any_cut nd
      end;
      set_taken nd i false;
      set_granted nd i false;
      nd.aval.(i) <- Op.identity;
      nd.gval_dirty <- true;
      uaw_reset nd i;
      sntlog_clear nd.sntlogs.(i);
      set_subcut nd i [];
      nd.shipped.(i) <- 0;
      nd.resync.(i) <- true;
      nd.refresh.(i) <- true;
      let probed_before = nd.probed.(i) in
      iter_requester_slots nd (fun r ->
          if r <> i && nd.pndg.(r) && not nd.snt.(r).(i) then begin
            nd.snt.(r).(i) <- true;
            nd.snt_count.(r) <- nd.snt_count.(r) + 1;
            nd.probed.(i) <- nd.probed.(i) + 1
          end);
      if nd.probed.(i) > probed_before && probed_before = 0 then begin
        count_reprobe t nd i;
        send t nd w Probe
      end
      else if nd.probed.(i) = 0 && nd.grntd_count > 0 then begin
        (* No request is waiting on this subtree, but grantees cache it:
           pull the fresh value with a bare probe (no snt bookkeeping —
           its response completes nothing, it only feeds the refresh
           push above) so their caches heal without waiting for the next
           write below the recovered node. *)
        count_reprobe t nd i;
        send t nd w Probe
      end;
      send t nd w (Hello { epoch = nd.epoch })
    end

  (* ------------------------------------------------------------------ *)
  (* Crash and recovery (perfect failure detector model: neighbours     *)
  (* learn of a crash synchronously; in-flight messages of the dead     *)
  (* incarnation are discarded by the transport's session teardown).    *)

  (* A neighbour of the crashed node [u] (slot [j] here) voids all state
     involving [u] and cancels every probe exchange with it: [u] as a
     requester gets no response, and probes sent to [u] are struck from
     the outstanding sets — completing requests partially (the cut now
     contains [u]) rather than hanging. *)
  let notify_down t nv j =
    if not nv.down.(j) then begin
      nv.down.(j) <- true;
      nv.down_count <- nv.down_count + 1;
      nv.any_cut <- true;
      set_taken nv j false;
      set_granted nv j false;
      nv.aval.(j) <- Op.identity;
      nv.gval_dirty <- true;
      nv.uaw.(j) <- IntSet.empty;
      nv.uaw_size.(j) <- 0;
      sntlog_clear nv.sntlogs.(j);
      nv.subcut.(j) <- IntSet.empty;
      nv.shipped.(j) <- 0;
      nv.resync.(j) <- false;
      nv.refresh.(j) <- false;
      nv.nbr_epoch.(j) <- -1;
      (* the dead requester's pending probe set *)
      if nv.pndg.(j) then begin
        for i = 0 to nv.deg - 1 do
          if nv.snt.(j).(i) then begin
            nv.snt.(j).(i) <- false;
            nv.probed.(i) <- nv.probed.(i) - 1
          end
        done;
        nv.snt_count.(j) <- 0;
        nv.pndg.(j) <- false
      end;
      (* probes sent to the dead node can never be answered *)
      iter_requester_slots nv (fun r ->
          if r <> j && nv.pndg.(r) && nv.snt.(r).(j) then begin
            nv.snt.(r).(j) <- false;
            nv.snt_count.(r) <- nv.snt_count.(r) - 1;
            nv.probed.(j) <- nv.probed.(j) - 1;
            if nv.snt_count.(r) = 0 then begin
              nv.pndg.(r) <- false;
              if r = self_slot nv then complete_combines t nv
              else sendresponse t nv nv.nbrs_arr.(r)
            end
          end)
    end

  let crash t ~node =
    let nd = t.nodes.(node) in
    if not nd.alive then invalid_arg "Mechanism.crash: node already down";
    nd.alive <- false;
    (* Volatile state is lost.  [value] survives (the node's input is
       durable — rereading it on restart is the recovery model), as do
       the ghost log and [completed] (analysis-only shadow state, kept
       so the causal checker can still account for pre-crash history). *)
    Array.fill nd.taken 0 nd.deg false;
    nd.tkn_count <- 0;
    Array.fill nd.granted 0 nd.deg false;
    nd.grntd_count <- 0;
    Array.fill nd.aval 0 nd.deg Op.identity;
    nd.gval_dirty <- true;
    for i = 0 to nd.deg - 1 do
      nd.uaw.(i) <- IntSet.empty;
      nd.uaw_size.(i) <- 0;
      sntlog_clear nd.sntlogs.(i);
      nd.subcut.(i) <- IntSet.empty;
      nd.shipped.(i) <- 0;
      nd.resync.(i) <- false;
      nd.refresh.(i) <- false;
      nd.down.(i) <- false;
      nd.nbr_epoch.(i) <- -1;
      nd.probed.(i) <- 0
    done;
    nd.down_count <- 0;
    nd.any_cut <- false;
    for r = 0 to nd.deg do
      nd.pndg.(r) <- false;
      Array.fill nd.snt.(r) 0 nd.deg false;
      nd.snt_count.(r) <- 0
    done;
    nd.upcntr <- 0;
    (* pending combines die with the node; close their spans *)
    nd.pending <- [];
    List.iter
      (fun span ->
        Telemetry.Span.finish t.sink ~clock:t.clock ~node:nd.id ~name:"combine"
          ~id:span)
      nd.pending_spans;
    nd.pending_spans <- [];
    for i = 0 to nd.deg - 1 do
      let nv = t.nodes.(nd.nbrs_arr.(i)) in
      if nv.alive then notify_down t nv (slot nv node)
    done

  let restart t ~node =
    let nd = t.nodes.(node) in
    if nd.alive then invalid_arg "Mechanism.restart: node is up";
    nd.alive <- true;
    nd.epoch <- nd.epoch + 1;
    (* perfect failure detector: learn which neighbours are down right
       now, and announce the new incarnation to the live ones *)
    for i = 0 to nd.deg - 1 do
      if t.nodes.(nd.nbrs_arr.(i)).alive then begin
        nd.resync.(i) <- true;
        send t nd nd.nbrs_arr.(i) (Hello { epoch = nd.epoch })
      end
      else begin
        nd.down.(i) <- true;
        nd.down_count <- nd.down_count + 1
      end
    done;
    nd.any_cut <- nd.down_count > 0

  (* ------------------------------------------------------------------ *)
  (* Public interface.                                                  *)

  let create ?(ghost = false) ?on_send ?metrics ?sink ?clock tree ~policy =
    let n = Tree.n_nodes tree in
    let mk_node id =
      let nbrs_arr = Tree.neighbors_arr tree id in
      let nbrs = Array.to_list nbrs_arr in
      let deg = Array.length nbrs_arr in
      let self_pos =
        let p = ref 0 in
        Array.iter (fun v -> if v < id then incr p) nbrs_arr;
        !p
      in
      {
        id;
        nbrs;
        nbrs_arr;
        deg;
        self_pos;
        value = Op.identity;
        taken = Array.make deg false;
        tkn_count = 0;
        granted = Array.make deg false;
        grntd_count = 0;
        aval = Array.make deg Op.identity;
        gval_cache = Op.identity;
        gval_dirty = true;
        uaw = Array.make deg IntSet.empty;
        uaw_size = Array.make deg 0;
        pndg = Array.make (deg + 1) false;
        snt = Array.init (deg + 1) (fun _ -> Array.make deg false);
        snt_count = Array.make (deg + 1) 0;
        probed = Array.make deg 0;
        upcntr = 0;
        sntlogs = Array.init deg (fun _ -> sntlog_create ());
        policy = policy ~node_id:id ~nbrs;
        view = None;
        alive = true;
        epoch = 0;
        nbr_epoch = Array.make deg (-1);
        down = Array.make deg false;
        down_count = 0;
        resync = Array.make deg false;
        refresh = Array.make deg false;
        subcut = Array.make deg IntSet.empty;
        any_cut = false;
        pending = [];
        pending_spans = [];
        glog = [];
        gwrites = [||];
        gwrites_len = 0;
        shipped = Array.make deg 0;
        last_write = Array.make n (-1);
        completed = 0;
      }
    in
    let net = Simul.Network.create ?on_send ?metrics ?sink ?clock tree ~kind_of in
    let tel =
      match metrics with
      | None -> None
      | Some m ->
        Some
          {
            lease_set = Telemetry.Metrics.counter m "mech.lease.set";
            lease_break = Telemetry.Metrics.counter m "mech.lease.break";
            lease_deny = Telemetry.Metrics.counter m "mech.lease.deny";
            update_fanout = Telemetry.Metrics.histogram m "mech.update.fanout";
            release_cascade =
              Telemetry.Metrics.histogram m "mech.release.cascade";
            ghost_log = Telemetry.Metrics.gauge m "mech.ghost.log";
            recovery_reprobes =
              Telemetry.Metrics.counter m "mech.recovery.reprobes";
            partial_combines =
              Telemetry.Metrics.counter m "mech.recovery.partial_combines";
          }
    in
    {
      tree;
      net;
      nodes = Array.init n mk_node;
      ghost;
      tel;
      sink = (match sink with Some s -> s | None -> Telemetry.Sink.null);
      recording =
        (match sink with Some s -> Telemetry.Sink.enabled s | None -> false);
      obs =
        (tel <> None
        || match sink with Some s -> Telemetry.Sink.enabled s | None -> false);
      clock = Simul.Network.clock net;
      spans = Telemetry.Span.allocator ();
    }

  let tree t = t.tree
  let network t = t.net
  let policy_name t = t.nodes.(0).policy.name

  let require_alive nd op =
    if not nd.alive then
      invalid_arg (Printf.sprintf "Mechanism.%s: node %d is down" op nd.id)

  let write t ~node arg =
    let nd = t.nodes.(node) in
    require_alive nd "write";
    t2_write t nd arg

  let combine_tagged t ~node k =
    let nd = t.nodes.(node) in
    require_alive nd "combine";
    t1_combine t nd (fun v cut -> k v ~cut)

  let combine t ~node k =
    let nd = t.nodes.(node) in
    require_alive nd "combine";
    t1_combine t nd (fun v _cut -> k v)

  let handler t ~src ~dst m =
    let nd = t.nodes.(dst) in
    if nd.alive then
      (* a crashed destination silently loses the message — the reliable
         transport already filters these, but plain-network drivers may
         still deliver in-flight messages of a dead incarnation *)
      match m with
      | Probe -> t3_probe t nd src
      | Response { x; flag; cut; wlog } -> t4_response t nd src x flag cut wlog
      | Update { x; id; cut; wlog } -> t5_update t nd src x id cut wlog
      | Release { ids } -> t6_release t nd src ids
      | Hello { epoch } -> t7_hello t nd src epoch

  let run_to_quiescence ?max_deliveries t =
    Simul.Engine.run_to_quiescence ?max_deliveries t.net ~handler:(handler t)

  let write_sync t ~node arg =
    write t ~node arg;
    ignore (run_to_quiescence t)

  let combine_sync t ~node =
    let result = ref None in
    combine t ~node (fun v -> result := Some v);
    ignore (run_to_quiescence t);
    match !result with
    | Some v -> v
    | None -> failwith "Mechanism.combine_sync: combine did not complete"

  let gather_sync t ~node =
    if not t.ghost then
      invalid_arg "Mechanism.gather_sync: requires a system created with ~ghost:true";
    let value = combine_sync t ~node in
    (* The combine just logged its gather entry; read its recentwrites. *)
    match t.nodes.(node).glog with
    | Ghost.Combine { crecent; _ } :: _ -> (value, crecent)
    | _ -> failwith "Mechanism.gather_sync: combine left no gather entry"

  let run_sequential t requests =
    List.map
      (fun (q : Op.t Request.t) ->
        match q.op with
        | Request.Write v ->
          write_sync t ~node:q.node v;
          { Request.request = q; returned = None }
        | Request.Combine ->
          let v = combine_sync t ~node:q.node in
          { Request.request = q; returned = Some v })
      requests

  let local_value t u = t.nodes.(u).value
  let gval t u = gval_of t.nodes.(u)

  let taken t u v =
    let nd = t.nodes.(u) in
    let i = slot nd v in
    i >= 0 && nd.taken.(i)

  let granted t u v =
    let nd = t.nodes.(u) in
    let i = slot nd v in
    i >= 0 && nd.granted.(i)

  let aval t u v =
    let nd = t.nodes.(u) in
    let i = slot nd v in
    if i >= 0 then nd.aval.(i) else Op.identity

  let uaw t u v =
    let nd = t.nodes.(u) in
    let i = slot nd v in
    if i >= 0 then nd.uaw.(i) else IntSet.empty

  let pndg t u =
    let nd = t.nodes.(u) in
    let s = ref IntSet.empty in
    for i = 0 to nd.deg - 1 do
      if nd.pndg.(i) then s := IntSet.add nd.nbrs_arr.(i) !s
    done;
    if nd.pndg.(nd.deg) then s := IntSet.add nd.id !s;
    !s

  let snt t u v =
    let nd = t.nodes.(u) in
    let r = if v = u then self_slot nd else slot nd v in
    if r < 0 then IntSet.empty
    else begin
      let s = ref IntSet.empty in
      let mask = nd.snt.(r) in
      for i = 0 to nd.deg - 1 do
        if mask.(i) then s := IntSet.add nd.nbrs_arr.(i) !s
      done;
      !s
    end

  let sntupdates_length t u =
    Array.fold_left
      (fun acc sl -> acc + sntlog_length sl)
      0 t.nodes.(u).sntlogs

  let lease_graph_edges t =
    List.filter (fun (u, v) -> granted t u v) (Tree.ordered_pairs t.tree)

  let message_total t = Simul.Network.total t.net
  let messages_of_kind t k = Simul.Network.total_of_kind t.net k

  let cost_between t u v =
    Simul.Network.sent t.net ~src:v ~dst:u Simul.Kind.Probe
    + Simul.Network.sent t.net ~src:u ~dst:v Simul.Kind.Response
    + Simul.Network.sent t.net ~src:u ~dst:v Simul.Kind.Update
    + Simul.Network.sent t.net ~src:v ~dst:u Simul.Kind.Release

  let reset_message_counters t = Simul.Network.reset_counters t.net

  let log t u = List.rev t.nodes.(u).glog
  let completed_requests t u = t.nodes.(u).completed
  let alive t u = t.nodes.(u).alive
  let epoch t u = t.nodes.(u).epoch

  let known_down t u =
    let nd = t.nodes.(u) in
    let s = ref IntSet.empty in
    for i = 0 to nd.deg - 1 do
      if nd.down.(i) then s := IntSet.add nd.nbrs_arr.(i) !s
    done;
    !s

  (* ------------------------------------------------------------------ *)
  (* Internal-consistency audit.                                        *)

  let check_invariants t =
    let fail fmt = Printf.ksprintf failwith fmt in
    Array.iter
      (fun nd ->
        let u = nd.id in
        (* dense counters vs recomputed cardinalities *)
        let count a = Array.fold_left (fun n b -> if b then n + 1 else n) 0 a in
        if count nd.taken <> nd.tkn_count then
          fail "node %d: tkn_count %d <> %d" u nd.tkn_count (count nd.taken);
        if count nd.granted <> nd.grntd_count then
          fail "node %d: grntd_count %d <> %d" u nd.grntd_count
            (count nd.granted);
        (* crash/recovery bookkeeping *)
        if count nd.down <> nd.down_count then
          fail "node %d: down_count %d <> %d" u nd.down_count (count nd.down);
        for i = 0 to nd.deg - 1 do
          if nd.down.(i) then begin
            if nd.taken.(i) then fail "node %d: taken lease on down slot %d" u i;
            if nd.granted.(i) then
              fail "node %d: granted lease to down slot %d" u i;
            if not (IntSet.is_empty nd.subcut.(i)) then
              fail "node %d: nonempty subcut on down slot %d" u i
          end
        done;
        let any' =
          nd.down_count > 0
          || Array.exists (fun s -> not (IntSet.is_empty s)) nd.subcut
        in
        if nd.any_cut <> any' then
          fail "node %d: any_cut %b inconsistent" u nd.any_cut;
        if not nd.alive then begin
          if nd.tkn_count <> 0 || nd.grntd_count <> 0 then
            fail "node %d: crashed but holds lease state" u;
          if nd.pending <> [] then fail "node %d: crashed with pending combines" u
        end;
        for i = 0 to nd.deg - 1 do
          if IntSet.cardinal nd.uaw.(i) <> nd.uaw_size.(i) then
            fail "node %d: uaw_size[%d] %d <> %d" u i nd.uaw_size.(i)
              (IntSet.cardinal nd.uaw.(i))
        done;
        (* gval cache *)
        if not nd.gval_dirty then begin
          let x = ref nd.value in
          for i = 0 to nd.deg - 1 do
            x := Op.combine !x nd.aval.(i)
          done;
          if not (Op.equal !x nd.gval_cache) then
            fail "node %d: stale gval cache" u
        end;
        (* snt masks vs their counters, probed counters, pndg linkage *)
        let probed' = Array.make nd.deg 0 in
        for r = 0 to nd.deg do
          let c = count nd.snt.(r) in
          if c <> nd.snt_count.(r) then
            fail "node %d: snt_count[%d] %d <> %d" u r nd.snt_count.(r) c;
          if nd.pndg.(r) <> (c > 0) then
            fail "node %d: pndg[%d]=%b but |snt|=%d" u r nd.pndg.(r) c;
          for i = 0 to nd.deg - 1 do
            if nd.snt.(r).(i) then probed'.(i) <- probed'.(i) + 1
          done
        done;
        for i = 0 to nd.deg - 1 do
          if probed'.(i) <> nd.probed.(i) then
            fail "node %d: probed[%d] %d <> %d" u i nd.probed.(i) probed'.(i)
        done;
        (* sntlogs: monotone ids, pruning watermark below live entries *)
        Array.iter
          (fun sl ->
            if sl.start < 0 || sl.start > sl.len then
              fail "node %d: sntlog window [%d,%d)" u sl.start sl.len;
            for j = sl.start + 1 to sl.len - 1 do
              if sl.rcvids.(j) <= sl.rcvids.(j - 1) then
                fail "node %d: sntlog rcvids not increasing" u;
              if sl.sntids.(j) <= sl.sntids.(j - 1) then
                fail "node %d: sntlog sntids not increasing" u
            done;
            if sl.len > sl.start && sl.pruned_hi >= sl.sntids.(sl.start) then
              fail "node %d: pruned_hi overlaps live sntlog" u;
            if sl.len > sl.start && sl.sntids.(sl.len - 1) > nd.upcntr then
              fail "node %d: sntid beyond upcntr" u)
          nd.sntlogs;
        (* ghost: gwrites mirrors glog's write subsequence; per-origin
           indices increase chronologically; last_write is their max *)
        let writes = Ghost.wlog (List.rev nd.glog) in
        if List.length writes <> nd.gwrites_len then
          fail "node %d: gwrites_len %d <> %d writes in glog" u nd.gwrites_len
            (List.length writes);
        List.iteri
          (fun j (w : Op.t Ghost.write) ->
            let w' = nd.gwrites.(j) in
            if w'.Ghost.wnode <> w.wnode || w'.windex <> w.windex then
              fail "node %d: gwrites[%d] diverges from glog" u j)
          writes;
        let hi = Array.make (Array.length nd.last_write) (-1) in
        List.iter
          (fun (w : Op.t Ghost.write) ->
            if w.windex <= hi.(w.wnode) then
              fail "node %d: write (%d,%d) breaks per-origin prefix order" u
                w.wnode w.windex;
            hi.(w.wnode) <- w.windex)
          writes;
        Array.iteri
          (fun v h ->
            if h <> nd.last_write.(v) then
              fail "node %d: last_write[%d] %d <> %d" u v nd.last_write.(v) h)
          hi;
        Array.iteri
          (fun i s ->
            if s < 0 || s > nd.gwrites_len then
              fail "node %d: shipped[%d]=%d out of range" u i s)
          nd.shipped)
      t.nodes
end
