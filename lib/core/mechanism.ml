module IntSet = Set.Make (Int)

module Make (Op : Agg.Operator.S) = struct
  type msg =
    | Probe
    | Response of { x : Op.t; flag : bool; wlog : Op.t Ghost.write list }
    | Update of { x : Op.t; id : int; wlog : Op.t Ghost.write list }
    | Release of { ids : IntSet.t }

  let kind_of = function
    | Probe -> Simul.Kind.Probe
    | Response _ -> Simul.Kind.Response
    | Update _ -> Simul.Kind.Update
    | Release _ -> Simul.Kind.Release

  (* One tuple of the paper's [sntupdates] set: an update received from
     [from_node] with identifier [rcvid] was forwarded under [sntid]. *)
  type sntupdate = { from_node : int; rcvid : int; sntid : int }

  type node = {
    id : int;
    nbrs : int list;
    nbrs_arr : int array;  (* same contents as [nbrs]; broadcast loops *)
    mutable value : Op.t;  (* the paper's [val] *)
    taken : (int, bool) Hashtbl.t;
    granted : (int, bool) Hashtbl.t;
    aval : (int, Op.t) Hashtbl.t;
    uaw : (int, IntSet.t) Hashtbl.t;
    mutable pndg : IntSet.t;
    snt : (int, IntSet.t) Hashtbl.t;  (* keyed by requester: nbrs + self *)
    mutable upcntr : int;
    mutable sntupdates : sntupdate list;
    policy : Policy.t;
    mutable view : Policy.view option;  (* built once, after allocation *)
    mutable pending : (Op.t -> unit) list;  (* callbacks of pending local combines *)
    (* Ghost state (Figure 6). *)
    mutable glog : Op.t Ghost.entry list;  (* reversed *)
    known_writes : (int * int, unit) Hashtbl.t;  (* (node,index) in glog *)
    last_write : int array;  (* per tree node: index of most recent write in glog, -1 if none *)
    mutable completed : int;  (* completed requests at this node *)
  }

  type t = {
    tree : Tree.t;
    net : msg Simul.Network.t;
    nodes : node array;
    ghost : bool;
  }

  (* ------------------------------------------------------------------ *)
  (* State accessors (the paper's nbrs(), tkn(), grntd(), sntprobes()). *)

  let tbl_get tbl k ~default =
    match Hashtbl.find_opt tbl k with Some v -> v | None -> default

  let tkn nd = List.filter (fun v -> tbl_get nd.taken v ~default:false) nd.nbrs

  let grntd nd =
    List.filter (fun v -> tbl_get nd.granted v ~default:false) nd.nbrs

  let sntprobes nd =
    Hashtbl.fold (fun _ s acc -> IntSet.union s acc) nd.snt IntSet.empty

  let node_view nd =
    match nd.view with
    | Some v -> v
    | None ->
      let v =
        {
          Policy.id = nd.id;
          nbrs = nd.nbrs;
          is_taken = (fun w -> tbl_get nd.taken w ~default:false);
          is_granted = (fun w -> tbl_get nd.granted w ~default:false);
          taken = (fun () -> tkn nd);
          granted = (fun () -> grntd nd);
          uaw_size =
            (fun w -> IntSet.cardinal (tbl_get nd.uaw w ~default:IntSet.empty));
        }
      in
      nd.view <- Some v;
      v

  (* The paper's gval(): local value folded with all neighbour caches. *)
  let gval_of nd =
    Array.fold_left
      (fun x v -> Op.combine x (tbl_get nd.aval v ~default:Op.identity))
      nd.value nd.nbrs_arr

  (* The paper's subval(w): gval() excluding the cache for [w]. *)
  let subval nd w =
    Array.fold_left
      (fun x v ->
        if v = w then x
        else Op.combine x (tbl_get nd.aval v ~default:Op.identity))
      nd.value nd.nbrs_arr

  (* ------------------------------------------------------------------ *)
  (* Ghost actions (Figure 6).                                          *)

  let ghost_wlog t nd = if t.ghost then Ghost.wlog (List.rev nd.glog) else []

  let ghost_append_write t nd (w : Op.t Ghost.write) =
    if t.ghost then begin
      nd.glog <- Ghost.Write w :: nd.glog;
      Hashtbl.replace nd.known_writes (Ghost.write_id w) ();
      nd.last_write.(w.wnode) <- w.windex
    end

  (* log := log . (wlog_w - log): append the writes of the received wlog
     that are not yet in our log, preserving their order. *)
  let ghost_merge t nd wlog_w =
    if t.ghost then
      List.iter
        (fun w ->
          if not (Hashtbl.mem nd.known_writes (Ghost.write_id w)) then
            ghost_append_write t nd w)
        wlog_w

  let ghost_recentwrites t nd =
    if t.ghost then
      List.init (Tree.n_nodes t.tree) (fun u -> (u, nd.last_write.(u)))
    else []

  (* ------------------------------------------------------------------ *)
  (* Procedures of Figure 1.                                            *)

  let send t nd dst m = Simul.Network.send t.net ~src:nd.id ~dst m

  (* sendprobes(w): mark [w] pending and probe every neighbour whose
     subtree aggregate is neither leased nor already being probed. *)
  let sendprobes t nd w =
    nd.pndg <- IntSet.add w nd.pndg;
    let skip = IntSet.add w (IntSet.union (IntSet.of_list (tkn nd)) (sntprobes nd)) in
    Array.iter
      (fun v -> if not (IntSet.mem v skip) then send t nd v Probe)
      nd.nbrs_arr

  (* forwardupdates(w, id): push fresh subtree aggregates to every
     grantee except [w]. *)
  let forwardupdates t nd w id =
    let wl = ghost_wlog t nd in
    List.iter
      (fun v -> if v <> w then send t nd v (Update { x = subval nd v; id; wlog = wl }))
      (grntd nd)

  (* sendresponse(w): answer a probe; grant a lease iff every other
     neighbour is covered by a taken lease and the policy agrees. *)
  let sendresponse t nd w =
    let others_covered =
      Array.for_all (fun v -> v = w || tbl_get nd.taken v ~default:false) nd.nbrs_arr
    in
    if others_covered then
      Hashtbl.replace nd.granted w
        (nd.policy.set_lease (node_view nd) ~target:w);
    let flag = tbl_get nd.granted w ~default:false in
    send t nd w (Response { x = subval nd w; flag; wlog = ghost_wlog t nd })

  let isgoodforrelease nd w =
    match grntd nd with [] -> true | [ v ] -> v = w | _ -> false

  (* forwardrelease(): break every eligible taken lease the policy wants
     to drop, sending back the accumulated unacknowledged-update ids. *)
  let forwardrelease t nd =
    List.iter
      (fun v ->
        if
          isgoodforrelease nd v
          && tbl_get nd.taken v ~default:false
          && nd.policy.break_lease (node_view nd) ~target:v
        then begin
          Hashtbl.replace nd.taken v false;
          send t nd v (Release { ids = tbl_get nd.uaw v ~default:IntSet.empty });
          Hashtbl.replace nd.uaw v IntSet.empty
        end)
      (tkn nd)

  (* onrelease(w, S): trim each uaw[v] down to the update ids that were
     forwarded to [w] within the released window, then let the policy
     react, then try to propagate the release. *)
  let onrelease t nd w s =
    (match IntSet.min_elt_opt s with
    | None -> ()
    | Some id ->
      List.iter
        (fun v ->
          if v <> w then begin
            let a =
              List.filter
                (fun (su : sntupdate) -> su.from_node = v && su.sntid >= id)
                nd.sntupdates
            in
            (* A empty means every update received from [v] was forwarded
               before the released window, i.e. consumed downstream by a
               combine: nothing from [v] is left unaccounted (beta.rcvid
               degenerates to +inf, so S' is empty). *)
            (match a with
            | [] -> Hashtbl.replace nd.uaw v IntSet.empty
            | hd :: tl ->
              let beta =
                List.fold_left
                  (fun (acc : sntupdate) su ->
                    if su.rcvid <= acc.rcvid then su else acc)
                  hd tl
              in
              let s' =
                IntSet.filter
                  (fun i -> i >= beta.rcvid)
                  (tbl_get nd.uaw v ~default:IntSet.empty)
              in
              Hashtbl.replace nd.uaw v s')
          end)
        (tkn nd));
    List.iter
      (fun v ->
        if v <> w && isgoodforrelease nd v then
          nd.policy.release_policy (node_view nd) ~target:v)
      (tkn nd);
    forwardrelease t nd

  let newid nd =
    nd.upcntr <- nd.upcntr + 1;
    nd.upcntr

  (* Completion of a local combine: log the matching gather (ghost) and
     fire every pending continuation with the global aggregate. *)
  let complete_combines t nd =
    let value = gval_of nd in
    let callbacks = List.rev nd.pending in
    nd.pending <- [];
    List.iter
      (fun k ->
        if t.ghost then
          nd.glog <-
            Ghost.Combine
              {
                cnode = nd.id;
                cindex = nd.completed;
                cvalue = value;
                crecent = ghost_recentwrites t nd;
              }
            :: nd.glog;
        nd.completed <- nd.completed + 1;
        k value)
      callbacks

  (* ------------------------------------------------------------------ *)
  (* Transitions.                                                       *)

  (* T1: combine request at [nd]. *)
  let t1_combine t nd k =
    nd.pending <- k :: nd.pending;
    nd.policy.on_combine (node_view nd);
    List.iter (fun v -> Hashtbl.replace nd.uaw v IntSet.empty) (tkn nd);
    if not (IntSet.mem nd.id nd.pndg) then begin
      let missing = List.filter (fun v -> not (tbl_get nd.taken v ~default:false)) nd.nbrs in
      match missing with
      | [] -> complete_combines t nd
      | _ :: _ ->
        sendprobes t nd nd.id;
        Hashtbl.replace nd.snt nd.id (IntSet.of_list missing)
    end

  (* T2: write request at [nd]. *)
  let t2_write t nd arg =
    nd.value <- arg;
    if t.ghost then
      ghost_append_write t nd
        { Ghost.wnode = nd.id; windex = nd.completed; warg = arg };
    nd.completed <- nd.completed + 1;
    nd.policy.on_write (node_view nd);
    if grntd nd <> [] then begin
      let id = newid nd in
      forwardupdates t nd nd.id id
    end

  (* T3: receive probe from [w]. *)
  let t3_probe t nd w =
    nd.policy.probe_rcvd (node_view nd) ~from:w;
    List.iter
      (fun v -> if v <> w then Hashtbl.replace nd.uaw v IntSet.empty)
      (tkn nd);
    if not (IntSet.mem w nd.pndg) then begin
      let missing =
        List.filter
          (fun v -> v <> w && not (tbl_get nd.taken v ~default:false))
          nd.nbrs
      in
      match missing with
      | [] -> sendresponse t nd w
      | _ :: _ ->
        sendprobes t nd w;
        Hashtbl.replace nd.snt w (IntSet.of_list missing)
    end

  (* T4: receive response(x, flag) from [w]. *)
  let t4_response t nd w x flag wlog_w =
    nd.policy.response_rcvd (node_view nd) ~flag ~from:w;
    Hashtbl.replace nd.aval w x;
    ghost_merge t nd wlog_w;
    Hashtbl.replace nd.taken w flag;
    let requesters = IntSet.elements nd.pndg in
    List.iter
      (fun v ->
        let s = IntSet.remove w (tbl_get nd.snt v ~default:IntSet.empty) in
        Hashtbl.replace nd.snt v s;
        if IntSet.is_empty s then begin
          nd.pndg <- IntSet.remove v nd.pndg;
          if v = nd.id then complete_combines t nd else sendresponse t nd v
        end)
      requesters

  (* T5: receive update(x, id) from [w]. *)
  let t5_update t nd w x id wlog_w =
    nd.policy.update_rcvd (node_view nd) ~from:w;
    Hashtbl.replace nd.aval w x;
    ghost_merge t nd wlog_w;
    Hashtbl.replace nd.uaw w (IntSet.add id (tbl_get nd.uaw w ~default:IntSet.empty));
    let other_grantees = List.filter (fun v -> v <> w) (grntd nd) in
    if other_grantees <> [] then begin
      let nid = newid nd in
      nd.sntupdates <- { from_node = w; rcvid = id; sntid = nid } :: nd.sntupdates;
      forwardupdates t nd w nid
    end
    else forwardrelease t nd

  (* T6: receive release(S) from [w]. *)
  let t6_release t nd w s =
    nd.policy.release_rcvd (node_view nd) ~from:w;
    Hashtbl.replace nd.granted w false;
    onrelease t nd w s

  (* ------------------------------------------------------------------ *)
  (* Public interface.                                                  *)

  let create ?(ghost = false) ?on_send tree ~policy =
    let n = Tree.n_nodes tree in
    let mk_node id =
      let nbrs_arr = Tree.neighbors_arr tree id in
      let nbrs = Array.to_list nbrs_arr in
      {
        id;
        nbrs;
        nbrs_arr;
        value = Op.identity;
        taken = Hashtbl.create 8;
        granted = Hashtbl.create 8;
        aval = Hashtbl.create 8;
        uaw = Hashtbl.create 8;
        pndg = IntSet.empty;
        snt = Hashtbl.create 8;
        upcntr = 0;
        sntupdates = [];
        policy = policy ~node_id:id ~nbrs;
        view = None;
        pending = [];
        glog = [];
        known_writes = Hashtbl.create 64;
        last_write = Array.make n (-1);
        completed = 0;
      }
    in
    {
      tree;
      net = Simul.Network.create ?on_send tree ~kind_of;
      nodes = Array.init n mk_node;
      ghost;
    }

  let tree t = t.tree
  let network t = t.net
  let policy_name t = t.nodes.(0).policy.name

  let write t ~node arg = t2_write t t.nodes.(node) arg
  let combine t ~node k = t1_combine t t.nodes.(node) k

  let handler t ~src ~dst m =
    let nd = t.nodes.(dst) in
    match m with
    | Probe -> t3_probe t nd src
    | Response { x; flag; wlog } -> t4_response t nd src x flag wlog
    | Update { x; id; wlog } -> t5_update t nd src x id wlog
    | Release { ids } -> t6_release t nd src ids

  let run_to_quiescence t =
    Simul.Engine.run_to_quiescence t.net ~handler:(handler t)

  let write_sync t ~node arg =
    write t ~node arg;
    ignore (run_to_quiescence t)

  let combine_sync t ~node =
    let result = ref None in
    combine t ~node (fun v -> result := Some v);
    ignore (run_to_quiescence t);
    match !result with
    | Some v -> v
    | None -> failwith "Mechanism.combine_sync: combine did not complete"

  let gather_sync t ~node =
    if not t.ghost then
      invalid_arg "Mechanism.gather_sync: requires a system created with ~ghost:true";
    let value = combine_sync t ~node in
    (* The combine just logged its gather entry; read its recentwrites. *)
    match t.nodes.(node).glog with
    | Ghost.Combine { crecent; _ } :: _ -> (value, crecent)
    | _ -> failwith "Mechanism.gather_sync: combine left no gather entry"

  let run_sequential t requests =
    List.map
      (fun (q : Op.t Request.t) ->
        match q.op with
        | Request.Write v ->
          write_sync t ~node:q.node v;
          { Request.request = q; returned = None }
        | Request.Combine ->
          let v = combine_sync t ~node:q.node in
          { Request.request = q; returned = Some v })
      requests

  let local_value t u = t.nodes.(u).value
  let gval t u = gval_of t.nodes.(u)
  let taken t u v = tbl_get t.nodes.(u).taken v ~default:false
  let granted t u v = tbl_get t.nodes.(u).granted v ~default:false
  let aval t u v = tbl_get t.nodes.(u).aval v ~default:Op.identity
  let uaw t u v = tbl_get t.nodes.(u).uaw v ~default:IntSet.empty
  let pndg t u = t.nodes.(u).pndg
  let snt t u v = tbl_get t.nodes.(u).snt v ~default:IntSet.empty
  let sntupdates_length t u = List.length t.nodes.(u).sntupdates

  let lease_graph_edges t =
    List.filter (fun (u, v) -> granted t u v) (Tree.ordered_pairs t.tree)

  let message_total t = Simul.Network.total t.net
  let messages_of_kind t k = Simul.Network.total_of_kind t.net k

  let cost_between t u v =
    Simul.Network.sent t.net ~src:v ~dst:u Simul.Kind.Probe
    + Simul.Network.sent t.net ~src:u ~dst:v Simul.Kind.Response
    + Simul.Network.sent t.net ~src:u ~dst:v Simul.Kind.Update
    + Simul.Network.sent t.net ~src:v ~dst:u Simul.Kind.Release

  let reset_message_counters t = Simul.Network.reset_counters t.net

  let log t u = List.rev t.nodes.(u).glog
  let completed_requests t u = t.nodes.(u).completed
end
