(** Block-granular cell allocator for dense per-node state.

    The mechanism keeps node state as structure-of-arrays columns
    indexed by a cell id from this allocator, not as per-node heap
    records: cells are handed out from 1024-cell blocks (the whole
    column storage is a handful of large arrays, cache-contiguous and
    ready for per-domain sharding), freed cells recycle through an
    intrusive free list, and companion columns grow in lock-step
    through {!on_grow} hooks.

    A cell id is valid from {!alloc} to {!free}.  The free list is
    threaded through an int array with a distinct sentinel for live
    cells, so a double {!free} fails immediately instead of corrupting
    the list. *)

type t

val create : ?block:int -> unit -> t
(** [block] (default 1024) is the growth granularity in cells. *)

val on_grow : t -> (int -> int -> unit) -> unit
(** [on_grow t hook] registers [hook old_cap new_cap], called whenever
    the slab grows — the owner of each companion column extends its
    backing array there, keeping every column the same length as the
    slab. *)

val alloc : t -> int
(** A fresh cell id, recycled from the free list when possible; grows
    the slab by one block ({!on_grow} hooks fire) when exhausted.  A
    fresh slab hands out ids [0, 1, 2, …] in order. *)

val free : t -> int -> unit
(** Return a cell to the free list.
    @raise Invalid_argument if the cell is not live (double free,
    foreign index). *)

val capacity : t -> int
(** Total cells across all blocks ( = length of every column). *)

val blocks : t -> int
val live : t -> int
val hwm : t -> int
val is_live : t -> int -> bool

val check_invariants : t -> unit
(** Free-list/live-mark audit: the free list is acyclic, within range,
    disjoint from live cells, and partitions the capacity with them.
    @raise Failure on the first violation.  For tests. *)
