type view = {
  id : int;
  nbrs : int list;
  degree : int;
  is_taken : int -> bool;
  is_granted : int -> bool;
  iter_taken : (int -> unit) -> unit;
  iter_granted : (int -> unit) -> unit;
  tkn_count : unit -> int;
  grntd_count : unit -> int;
  other_grantee : int -> bool;
  uaw_size : int -> int;
}

type t = {
  name : string;
  on_combine : view -> unit;
  on_write : view -> unit;
  probe_rcvd : view -> from:int -> unit;
  response_rcvd : view -> flag:bool -> from:int -> unit;
  update_rcvd : view -> from:int -> unit;
  release_rcvd : view -> from:int -> unit;
  set_lease : view -> target:int -> bool;
  break_lease : view -> target:int -> bool;
  release_policy : view -> target:int -> unit;
}

type factory = node_id:int -> nbrs:int list -> t

let noop ~name ~set_lease ~node_id:_ ~nbrs:_ =
  {
    name;
    on_combine = (fun _ -> ());
    on_write = (fun _ -> ());
    probe_rcvd = (fun _ ~from:_ -> ());
    response_rcvd = (fun _ ~flag:_ ~from:_ -> ());
    update_rcvd = (fun _ ~from:_ -> ());
    release_rcvd = (fun _ ~from:_ -> ());
    set_lease = (fun _ ~target:_ -> set_lease);
    break_lease = (fun _ ~target:_ -> false);
    release_policy = (fun _ ~target:_ -> ());
  }
