(* Per-node policy state: the lease timers lt[v] of invariant I4,
   indexed directly by neighbour id. *)
type state = { lt : int array }

let make_state nbrs =
  { lt = Array.make (List.fold_left max 0 nbrs + 1) 0 }

let policy ~node_id:_ ~nbrs =
  let s = make_state nbrs in
  {
    Policy.name = "rww";
    on_combine =
      (fun view -> view.Policy.iter_taken (fun v -> s.lt.(v) <- 2));
    on_write = (fun _ -> ());
    probe_rcvd =
      (fun view ~from ->
        view.Policy.iter_taken (fun v -> if v <> from then s.lt.(v) <- 2));
    response_rcvd = (fun _ ~flag ~from -> if flag then s.lt.(from) <- 2);
    update_rcvd =
      (fun view ~from ->
        (* Decrement only when this node is a lease-graph leaf in the
           direction away from [from] (Lemma 4.2, case T5). *)
        if not (view.Policy.other_grantee from) then
          s.lt.(from) <- s.lt.(from) - 1);
    release_rcvd = (fun _ ~from:_ -> ());
    set_lease = (fun _ ~target:_ -> true);
    break_lease = (fun _ ~target -> s.lt.(target) <= 0);
    release_policy =
      (fun view ~target ->
        s.lt.(target) <- max 0 (s.lt.(target) - view.Policy.uaw_size target));
  }
