(** The lease-based aggregation mechanism (paper Figures 1 and 6).

    [Make (Op)] instantiates the protocol template for one aggregation
    operator.  The resulting [system] runs any lease policy (see
    {!Policy}) over any tree, on top of the FIFO simulator, and exposes:

    - request entry points: {!Make.write} and {!Make.combine} perform
      the paper's local transitions T2 and T1 and enqueue messages;
    - the message {!Make.handler} implementing transitions T3-T6
      (receipt of [probe], [response], [update], [release]);
    - sequential conveniences ({!Make.write_sync}, {!Make.combine_sync})
      that run the network to quiescence, giving the paper's sequential
      executions;
    - read-only inspection of every piece of per-node state named by the
      paper ([taken], [granted], [aval], [uaw], [pndg], [snt]), used by
      the tests that check the paper's invariants (Lemmas 3.1, 3.2, 3.4,
      I(u), I4(u));
    - optional ghost logs (Figure 6) for the causal-consistency
      analysis of concurrent executions.

    The transcription is deliberately line-by-line: each transition
    carries a comment naming the paper's label (T1..T6) and procedures
    keep the paper's names ([sendprobes], [forwardupdates],
    [sendresponse], [onrelease], [forwardrelease], [gval], [subval]).

    Internally the per-node state named by the paper is stored densely
    as slab-indexed structure-of-arrays columns ({!Slab} hands out the
    cell ids; every column is one flat array), with per-neighbour-slot
    state packed into shared arenas indexed by per-node base offsets:
    [taken]/[granted] are byte arrays with incrementally maintained
    cardinalities, [aval] is a value array behind a cached [gval] (so
    [subval] is O(1) for operators with a group inverse), [uaw] is a
    sorted int window (O(1) append, release trims advance its head),
    and [sntupdates] is a per-channel parallel-array log with monotone
    ids that is binary searched and pruned as releases consume it.
    Ghost write logs are delta-encoded per channel: each message
    carries only the suffix of the write log not previously shipped on
    that channel.

    The data plane is flat binary frames ({!Simul.Frame}) drawn from a
    per-system recycling pool: the outbox encodes each message straight
    into a pooled frame (see {!Make.Wire} for the payload layout), the
    network queues carry the frames themselves, and {!Make.handler}
    decodes header fields off the frame and releases it — in the
    fault-free, ghost-free steady state the whole send -> queue -> pop
    -> decode -> dispatch path performs {e zero} minor allocation
    (asserted by the frames test suite and gated in [bench-smoke]).

    None of this changes the protocol: message sequences are identical
    to the plain transcription (pinned by golden tests), and
    {!Make.check_invariants} audits the representation — and the frame
    pool and slab — against the naive recomputation. *)

module IntSet : Set.S with type elt = int

module Make (Op : Agg.Operator.S) : sig
  type msg =
    | Probe
    | Response of {
        x : Op.t;
        flag : bool;
        cut : int list;
            (** roots of unreachable subtrees behind the sender;
                [[]] in fault-free runs *)
        wlog : Op.t Ghost.write list;
      }
    | Update of { x : Op.t; id : int; cut : int list; wlog : Op.t Ghost.write list }
    | Release of { ids : IntSet.t }
    | Hello of { epoch : int }
        (** post-restart resynchronization: announces a new incarnation
            (transition T7; never sent in fault-free runs) *)

  val kind_of : msg -> Simul.Kind.t
  (** Accounting classifier for the structured view.  On the wire the
      kind rides in the frame header ([Simul.Kind.index]-coded), so
      frame-level consumers classify with
      [Simul.Kind.of_index (Simul.Frame.kind f)] directly. *)

  type t

  val create :
    ?ghost:bool ->
    ?on_send:(src:int -> dst:int -> unit) ->
    ?metrics:Telemetry.Metrics.t ->
    ?sink:Telemetry.Sink.t ->
    ?clock:(unit -> float) ->
    ?shard_of:(int -> int) ->
    ?detached:int list ->
    Tree.t ->
    policy:Policy.factory ->
    t
  (** [create tree ~policy] builds the initial quiescent system: all
      local values are the operator identity, no leases in either
      direction, empty logs.  [ghost] (default [false]) enables the
      Figure 6 ghost actions (write logs piggybacked on messages).
      [on_send] is forwarded to the network — hook for virtual-time
      scheduling ({!Simul.Devent}).

      Telemetry (all optional, zero-cost when absent):
      - [metrics] registers mechanism-level instruments alongside the
        network's: counters [mech.lease.set] / [mech.lease.break] /
        [mech.lease.deny], histograms [mech.update.fanout] (updates
        pushed per forwardupdates call) and [mech.release.cascade]
        (releases forwarded while handling one received release), gauge
        [mech.ghost.log] (ghost write-log length; its high-water mark
        bounds piggyback memory), and recovery counters
        [mech.recovery.reprobes] (first probe to a recovered neighbour)
        and [mech.recovery.partial_combines] (combines completed with a
        nonempty cut).
      - [sink] receives lease-lifecycle events, a [Mark] per write, and
        a [combine] span per T1 request (begun at initiation, finished
        at completion).
      - [clock] stamps events; both the mechanism and the network
        default to the network's op-tick clock, so pass
        [Simul.Devent.clock] to put everything on virtual time.
      - [shard_of] (default [fun _ -> 0]) maps each node to its owning
        shard; sink events are tagged with the shard of the node that
        recorded them, so a sharded run's merged trace attributes every
        event ({!Telemetry.Export.chrome_trace_fleet}).

      [detached] (default [[]]) lists nodes that start outside the
      active aggregation tree (see {!depart}/{!join}); the remaining
      active set must be nonempty and connected (validated through
      {!Tree.Dyn.create}).
      @raise Invalid_argument on an invalid initial membership. *)

  val tree : t -> Tree.t

  val network : t -> Simul.Frame.t Simul.Network.t
  (** The underlying network; its queues hold encoded frames.  Drivers
      that pop from it directly own each popped frame and must either
      hand it to {!handler} (which releases it) or release it
      themselves. *)

  val frame_pool : t -> Simul.Frame.pool
  (** The pool every outgoing frame is drawn from.  At quiescence its
      live count is 0 — anything else is a leaked in-flight frame.
      After {!set_outbox} the default pool is bypassed (frames come
      from the router's per-shard pools) and stays empty. *)

  val set_outbox :
    t ->
    send:(src:int -> dst:int -> Simul.Frame.t -> unit) ->
    pool_for:(int -> Simul.Frame.pool) ->
    unit
  (** Reroute message egress: every outgoing frame is allocated from
      [pool_for sender] and handed to [send] instead of the internal
      network.  This is the {!Simul.Sharded} hook — each node draws
      from its owning shard's pool and cross-shard sends go through
      mailboxes — and after installation {!network}, {!message_total}
      and friends no longer see this system's traffic (the router does
      the accounting).  Install before any domain is spawned and leave
      it alone afterwards; transitions for a node must then only run on
      the domain owning that node. *)

  val slab : t -> Slab.t
  (** The cell allocator behind the node-state columns (one live cell
      per tree node; block accounting feeds the [slab.blocks] gauge). *)

  val policy_name : t -> string

  (** {1 Requests (local transitions)} *)

  val write : t -> node:int -> Op.t -> unit
  (** Transition T2 at [node]: set the local value, notify lease
      holders.  Messages are enqueued, not delivered. *)

  val combine : t -> node:int -> (Op.t -> unit) -> unit
  (** Transition T1 at [node].  The continuation receives the global
      aggregate; it fires immediately if all neighbouring subtree
      aggregates are covered by taken leases, otherwise after the
      probe/response sub-protocol completes (during a later delivery).
      During a partition the aggregate may be partial — use
      {!combine_tagged} to observe the cut. *)

  val combine_tagged : t -> node:int -> (Op.t -> cut:int list -> unit) -> unit
  (** Like {!combine}, but the continuation also receives the {e cut}:
      the roots of the subtrees the aggregate could not reach (crashed
      neighbours and cuts reported from deeper in the tree).  [cut = []]
      means the result is the exact global aggregate.  Partial results
      (nonempty cut) are degraded reads outside the consistency
      contract: they are not ghost-logged and do not advance
      {!completed_requests}. *)

  (** {1 Message delivery} *)

  val handler : t -> src:int -> dst:int -> Simul.Frame.t -> unit
  (** Transitions T3-T7, dispatched on the frame's kind byte; payload
      fields are decoded in place (no [msg] is built on the hot path).
      Consumes the caller's frame reference.  Frames addressed to a
      crashed node are silently dropped (and still released). *)

  val run_to_quiescence : ?max_deliveries:int -> t -> int
  (** Deliver queued messages until quiescent; returns deliveries.
      @raise Simul.Engine.Divergence past [max_deliveries] (default
      {!Simul.Engine.default_max_deliveries}). *)

  (** {1 Crash and recovery}

      The failure model: a {!crash}ed node loses all volatile protocol
      state (leases in both directions, cached aggregates, pending
      combines, probe bookkeeping) but keeps its durable input [value],
      and its analysis-only ghost log.  Neighbours learn of the crash
      synchronously (perfect failure detector): they void all state
      involving the dead incarnation, cancel probe exchanges with it
      (completing affected combines {e partially}, tagged with the cut,
      rather than hanging), and exclude it from lease coverage.
      {!restart} bumps the node's lease epoch and announces the new
      incarnation with [Hello] messages; on receipt (T7) neighbours
      break any leftover leases, re-probe the fresh subtree on behalf of
      still-pending requests, and reply with their own epoch.  In-flight
      messages of a dead incarnation must be discarded by the transport
      ({!Simul.Reliable}'s session teardown); with a plain network the
      handler's alive-guard drops them on delivery. *)

  val crash : t -> node:int -> unit
  (** @raise Invalid_argument if already down. *)

  val restart : t -> node:int -> unit
  (** @raise Invalid_argument if not down. *)

  val alive : t -> int -> bool

  val epoch : t -> int -> int
  (** Lease epoch (incarnation number): restarts so far. *)

  val known_down : t -> int -> IntSet.t
  (** Neighbours a node currently believes to be crashed. *)

  (** {1 Dynamic membership (churn)}

      The capacity tree is fixed; membership tracks which nodes are
      currently part of the active aggregation tree.  The legal moves
      mirror {!Tree.Dyn}: only an active leaf of the active subtree may
      {!depart} (its unique attached neighbour is the {e handoff
      point}), and a detached node {!join}s back at any attached
      neighbour.  A departure hands the leaf's durable value and ghost
      write log to the handoff neighbour — the departing node closes
      its history with an identity write and the neighbour absorbs the
      carried value with a real write, so the aggregate over the active
      tree is conserved and the causal checker stays green across the
      reconfiguration.  A join bumps the node's epoch and runs the T7
      [Hello] resync, exactly like a restart: the attachment is fenced
      against any stale frames of the previous membership.  Detached
      neighbours are excluded from lease coverage like crashed ones but
      contribute {e no} cut entries: combines over the active tree stay
      exact.  Requests ({!write}/{!combine}) on a detached node raise. *)

  val depart : t -> node:int -> unit
  (** Detach an active leaf, handing its state to its unique attached
      neighbour.  @raise Invalid_argument if the node is down, already
      detached, not an active leaf, or its handoff neighbour is down. *)

  val join : t -> node:int -> unit
  (** Re-attach a detached node (epoch bump + Hello resync).
      @raise Invalid_argument if the node is attached, down, or has no
      attached neighbour. *)

  val attached : t -> int -> bool

  val known_detached : t -> int -> IntSet.t
  (** Neighbours a node currently believes to be detached.  Exact for
      attached nodes; possibly stale for a detached node (recomputed
      when it joins). *)

  (** {1 Anti-entropy hooks (lib/repair)}

      Ghost-log reconciliation primitives.  Every ghost log holds, per
      origin, a dense prefix of that origin's write sequence, so state
      comparison reduces to comparing per-origin high-water marks and
      repair reduces to shipping suffixes.  All three require
      [~ghost:true].  @raise Invalid_argument otherwise. *)

  val ghost_frontier : t -> node:int -> int array
  (** Per-origin high-water marks of the node's write log ([-1] =
      none); fresh copy, index = tree node. *)

  val ghost_suffix : t -> node:int -> origin:int -> above:int -> Op.t Ghost.write list
  (** The writes of [origin] in [node]'s log with index > [above], in
      index order — what a peer whose frontier stops at [above] is
      missing. *)

  val ghost_admit : t -> node:int -> Op.t Ghost.write list -> unit
  (** Merge repaired writes into [node]'s log (out-of-band delivery;
      same merge as a piggybacked wlog, deduplicated by index). *)

  (** {1 Sequential execution} *)

  val write_sync : t -> node:int -> Op.t -> unit
  (** T2 then run to quiescence: one sequentially executed write. *)

  val combine_sync : t -> node:int -> Op.t
  (** T1 then run to quiescence: one sequentially executed combine.
      @raise Failure if the combine did not complete (impossible in a
      sequential execution; indicates a protocol bug). *)

  val gather_sync : t -> node:int -> Op.t * (int * int) list
  (** The gather request of Section 5: a combine that additionally
      returns, for every tree node, the per-node index of the most
      recent write the aggregate reflects ([-1] if none) — the
      [recentwrites] retval.  Requires the system to have been created
      with [~ghost:true].
      @raise Invalid_argument otherwise. *)

  val run_sequential : t -> Op.t Request.t list -> Op.t Request.result list
  (** Execute a whole request sequence sequentially. *)

  (** {1 Inspection} *)

  val local_value : t -> int -> Op.t
  val gval : t -> int -> Op.t
  (** The paper's [gval()]: aggregate of local value and neighbour
      subtree caches. *)

  val taken : t -> int -> int -> bool
  (** [taken t u v] = the paper's [u.taken\[v\]]. *)

  val granted : t -> int -> int -> bool
  (** [granted t u v] = the paper's [u.granted\[v\]]. *)

  val aval : t -> int -> int -> Op.t
  (** [aval t u v] = the paper's [u.aval\[v\]]. *)

  val uaw : t -> int -> int -> IntSet.t
  (** [uaw t u v] = the paper's [u.uaw\[v\]]. *)

  val pndg : t -> int -> IntSet.t
  val snt : t -> int -> int -> IntSet.t
  val sntupdates_length : t -> int -> int

  val lease_graph_edges : t -> (int * int) list
  (** Directed edges (u,v) with [granted t u v] — the paper's lease
      graph G(Q). *)

  val message_total : t -> int
  val messages_of_kind : t -> Simul.Kind.t -> int

  val cost_between : t -> int -> int -> int
  (** [cost_between t u v] is the paper's [C_A(sigma, u, v)]: probes
      v->u + responses u->v + updates u->v + releases v->u, since
      creation (or the last counter reset). *)

  val reset_message_counters : t -> unit

  val check_invariants : t -> unit
  (** Audit the internal representation: the dense per-slot lease arrays
      against their incrementally maintained cardinalities ([tkn_count],
      [grntd_count], uaw sizes, snt popcounts, the sntprobes membership
      counters), the cached [gval] against a fresh fold, the per-channel
      [sntupdates] logs (strictly increasing ids, pruning watermark below
      the live window) and the ghost state (write array mirrors the log,
      per-origin prefix order, [last_write] high-water marks).  Safe to
      call between any two request/delivery steps.
      @raise Failure on the first violated invariant. *)

  (** {1 Ghost logs (Section 5)} *)

  val log : t -> int -> Op.t Ghost.entry list
  (** [log t u]: node [u]'s ghost log, chronological.  Empty unless the
      system was created with [~ghost:true]. *)

  val completed_requests : t -> int -> int
  (** Number of completed requests at a node (drives request indices). *)

  (** {1 Wire codec}

      The frame payload encoding behind the structured {!msg} view.
      Layouts (all little-endian, after the 18-byte {!Simul.Frame}
      header; an {e x field} is a u16 byte length followed by
      [Op.encode] bytes):

      {v
        Probe     (empty)
        Response  x field, flag u8, cut (u16 count + i64 ids),
                  wlog (u32 count + per write: wnode i64, windex i64,
                  x field)
        Update    id i64, x field, cut, wlog
        Release   u32 count + i64 ids ascending (first id = min)
        Hello     epoch i64
      v}

      The hot path encodes/decodes these layouts inline; this module is
      the structured, fully checked equivalent used by tests and
      round-trip properties. *)

  module Wire : sig
    type error =
      | Truncated of { field : string; need : int; have : int }
      | Bad_kind of int
      | Bad_value of string

    val pp_error : Format.formatter -> error -> unit

    val encode : Simul.Frame.pool -> msg -> Simul.Frame.t
    (** A fresh frame (count 1) from the pool carrying [m]; byte-
        identical to what the hot senders emit. *)

    val decode : Simul.Frame.t -> (msg, error) result
    (** Fully bounds-checked: arbitrary garbage bytes decode to a typed
        [Error], never an exception or out-of-range read. *)
  end
end
