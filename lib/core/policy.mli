(** Lease policies.

    The mechanism of the paper's Figure 1 is a protocol template: the
    underlined calls ([oncombine], [probercvd], [responsercvd],
    [updatercvd], [releasercvd], [setlease], [breaklease],
    [releasepolicy]) are stubs for the {e policy} deciding when leases
    are set and broken.  A policy instance is attached to each node; its
    hooks are invoked by {!Mechanism} at exactly the points the paper's
    pseudocode invokes the stubs, and may inspect the node's lease state
    through a read-only {!view}.

    One extension over the paper: an [on_write] hook invoked on a local
    write.  RWW does not use it (the paper's stub list has no write
    hook), but the generic (a,b)-policies of Theorem 3 need to observe
    local writes to count "consecutive write requests in sigma(u,v)". *)

(** Read-only window onto the owning node's mechanism state.

    The accessors are backed by the mechanism's dense per-slot lease
    arrays: the predicates and counters are O(log degree) / O(1) and
    allocation-free, and the [iter_*] functions visit neighbours in
    ascending order without building intermediate lists (the paper's
    [tkn()] and [grntd()] are [iter_taken]/[iter_granted] fused with
    their consumer's loop). *)
type view = {
  id : int;  (** the node this policy instance belongs to *)
  nbrs : int list;  (** its neighbours, ascending *)
  degree : int;  (** [List.length nbrs] *)
  is_taken : int -> bool;
      (** [is_taken v]: does this node hold a lease from neighbour [v]
          (the paper's [u.taken\[v\]])? *)
  is_granted : int -> bool;
      (** [is_granted v]: has this node granted a lease to [v]
          (the paper's [u.granted\[v\]])? *)
  iter_taken : (int -> unit) -> unit;
      (** Visit the paper's [tkn()] — every neighbour [v] with
          [taken\[v\]] — in ascending order, allocation-free. *)
  iter_granted : (int -> unit) -> unit;
      (** Visit the paper's [grntd()] in ascending order. *)
  tkn_count : unit -> int;  (** [|tkn()|], O(1). *)
  grntd_count : unit -> int;  (** [|grntd()|], O(1). *)
  other_grantee : int -> bool;
      (** [other_grantee w]: does a grantee other than [w] exist
          ([List.exists (fun v -> v <> w) (grntd ())])?  O(log degree). *)
  uaw_size : int -> int;
      (** [uaw_size v]: cardinality of [uaw\[v\]], the set of identifiers
          of updates accepted from [v] since the last reset.  O(1). *)
}

type t = {
  name : string;
  on_combine : view -> unit;
      (** [oncombine(u)] — a combine request was initiated locally. *)
  on_write : view -> unit;
      (** extension hook — a write request was executed locally. *)
  probe_rcvd : view -> from:int -> unit;  (** [probercvd(w)] in T3. *)
  response_rcvd : view -> flag:bool -> from:int -> unit;
      (** [responsercvd(flag, w)] in T4. *)
  update_rcvd : view -> from:int -> unit;  (** [updatercvd(w)] in T5. *)
  release_rcvd : view -> from:int -> unit;  (** [releasercvd(w)] in T6. *)
  set_lease : view -> target:int -> bool;
      (** [setlease(w)] — consulted in [sendresponse] when this node is
          able to grant a lease to [w]; [true] grants. *)
  break_lease : view -> target:int -> bool;
      (** [breaklease(v)] — consulted in [forwardrelease] when the taken
          lease from [v] is eligible for release; [true] releases. *)
  release_policy : view -> target:int -> unit;
      (** [releasepolicy(v)] — invoked in [onrelease] after [uaw\[v\]]
          has been trimmed, when [v] is good for release. *)
}

type factory = node_id:int -> nbrs:int list -> t
(** A policy algorithm: builds one (stateful) policy instance per node. *)

val noop : name:string -> set_lease:bool -> factory
(** Stateless policy that never reacts to events, always answers
    [set_lease] to {!set_lease} and never breaks.  [set_lease:true] is
    the "lease everywhere" extreme (Astrolabe-like once warmed up);
    [set_lease:false] never creates leases (MDS-2-like). *)
