let infinity_budget = max_int / 4

let name ~a ~b =
  let side x = if x >= infinity_budget then "inf" else string_of_int x in
  Printf.sprintf "ab(%s,%s)" (side a) (side b)

type state = {
  lt : int array;  (* write budget for taken leases, as in RWW *)
  cc : int array;  (* consecutive combines observed per grantee *)
}

(* Both tables are indexed directly by neighbour id. *)
let make_state nbrs =
  let size = List.fold_left max 0 nbrs + 1 in
  { lt = Array.make size 0; cc = Array.make size 0 }

let policy ~a ~b ~node_id:_ ~nbrs =
  if a < 1 || b < 1 then invalid_arg "Ab_policy.policy: a and b must be >= 1";
  let s = make_state nbrs in
  {
    Policy.name = name ~a ~b;
    on_combine = (fun view -> view.Policy.iter_taken (fun v -> s.lt.(v) <- b));
    on_write =
      (fun view ->
        (* A local write is a write in sigma(u,v) for every neighbour v:
           it interrupts every consecutive-combine streak. *)
        List.iter (fun v -> s.cc.(v) <- 0) view.Policy.nbrs);
    probe_rcvd =
      (fun view ~from ->
        view.Policy.iter_taken (fun v -> if v <> from then s.lt.(v) <- b);
        s.cc.(from) <- s.cc.(from) + 1);
    response_rcvd = (fun _ ~flag ~from -> if flag then s.lt.(from) <- b);
    update_rcvd =
      (fun view ~from ->
        if not (view.Policy.other_grantee from) then
          s.lt.(from) <- s.lt.(from) - 1;
        (* A write on [from]'s side lies in sigma(u,v) for every other
           neighbour v: it interrupts their combine streaks. *)
        List.iter (fun v -> if v <> from then s.cc.(v) <- 0) view.Policy.nbrs);
    release_rcvd = (fun _ ~from:_ -> ());
    set_lease =
      (fun _ ~target ->
        if s.cc.(target) >= a then begin
          s.cc.(target) <- 0;
          true
        end
        else false);
    break_lease = (fun _ ~target -> s.lt.(target) <= 0);
    release_policy =
      (fun view ~target ->
        s.lt.(target) <- max 0 (s.lt.(target) - view.Policy.uaw_size target));
  }

let always_lease ~node_id ~nbrs = policy ~a:1 ~b:infinity_budget ~node_id ~nbrs

let never_lease ~node_id ~nbrs =
  policy ~a:infinity_budget ~b:1 ~node_id ~nbrs
