(* Block-granular cell allocator backing the mechanism's dense per-node
   state (the `new_node_block` trick: state grows a block at a time and
   individual cells recycle through an intrusive free list, so node
   state is cache-contiguous and allocation stays off the per-request
   path).  The free list is threaded through [next]: free cells chain
   by index, live cells hold the [live_mark] sentinel — which makes
   double frees and foreign indices detectable in O(1). *)

let free_end = -1 (* terminates the free list *)
let live_mark = -2 (* cell is allocated *)

type t = {
  block : int;
  mutable next : int array; (* per cell: free-list link or live_mark *)
  mutable head : int; (* first free cell, or free_end *)
  mutable cap : int;
  mutable live_n : int;
  mutable hwm_n : int;
  mutable grow_hooks : (int -> int -> unit) list;
}

let create ?(block = 1024) () =
  if block <= 0 then invalid_arg "Slab.create: block size must be positive";
  {
    block;
    next = [||];
    head = free_end;
    cap = 0;
    live_n = 0;
    hwm_n = 0;
    grow_hooks = [];
  }

let on_grow t hook = t.grow_hooks <- hook :: t.grow_hooks

let capacity t = t.cap
let live t = t.live_n
let hwm t = t.hwm_n
let blocks t = t.cap / t.block

let is_live t i = i >= 0 && i < t.cap && t.next.(i) == live_mark

let grow t =
  let old_cap = t.cap in
  let cap = old_cap + t.block in
  let next = Array.make cap live_mark in
  Array.blit t.next 0 next 0 old_cap;
  (* thread the new block in ascending order *)
  for i = cap - 1 downto old_cap do
    next.(i) <- (if i = cap - 1 then t.head else i + 1)
  done;
  t.next <- next;
  t.head <- old_cap;
  t.cap <- cap;
  (* companion arrays (the mechanism's SoA columns) extend in step *)
  List.iter (fun h -> h old_cap cap) t.grow_hooks

let alloc t =
  if t.head = free_end then grow t;
  let i = t.head in
  t.head <- t.next.(i);
  t.next.(i) <- live_mark;
  t.live_n <- t.live_n + 1;
  if t.live_n > t.hwm_n then t.hwm_n <- t.live_n;
  i

let free t i =
  if i < 0 || i >= t.cap then
    invalid_arg (Printf.sprintf "Slab.free: index %d out of range" i);
  if t.next.(i) <> live_mark then
    invalid_arg (Printf.sprintf "Slab.free: cell %d is not live" i);
  t.next.(i) <- t.head;
  t.head <- i;
  t.live_n <- t.live_n - 1

let check_invariants t =
  let fail fmt = Format.kasprintf failwith ("Slab.check_invariants: " ^^ fmt) in
  if t.cap mod t.block <> 0 then
    fail "capacity %d not a multiple of the block size %d" t.cap t.block;
  if Array.length t.next <> t.cap then
    fail "link array length %d <> capacity %d" (Array.length t.next) t.cap;
  let free_count = ref 0 in
  let i = ref t.head in
  while !i <> free_end do
    if !free_count > t.cap then fail "free list cycle";
    if !i < 0 || !i >= t.cap then fail "free link %d out of range" !i;
    if t.next.(!i) = live_mark then fail "live cell %d on the free list" !i;
    incr free_count;
    i := t.next.(!i)
  done;
  let live_count = ref 0 in
  Array.iter (fun l -> if l = live_mark then incr live_count) t.next;
  if !live_count <> t.live_n then
    fail "%d cells marked live but live = %d" !live_count t.live_n;
  if !live_count + !free_count <> t.cap then
    fail "%d live + %d free <> capacity %d" !live_count !free_count t.cap
