exception Invalid_tree of string

type t = {
  n : int;
  adj : int array array;                 (* adj.(u) = sorted neighbours *)
  (* Cache: for each node u, parent of every node in T rooted at u.
     Filled lazily, one root at a time; parent_of.(u).(u) = -1. *)
  parent_of : int array option array;
}

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid_tree s)) fmt

let create ~n ~edges =
  if n < 1 then invalid "tree must have at least one node, got %d" n;
  let expected = n - 1 in
  let got = List.length edges in
  if got <> expected then
    invalid "a tree on %d nodes has %d edges, got %d" n expected got;
  let adj_lists = Array.make n [] in
  let seen = Hashtbl.create (2 * n) in
  let add_edge (u, v) =
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid "edge (%d,%d) out of range [0,%d)" u v n;
    if u = v then invalid "self loop at node %d" u;
    let key = (min u v, max u v) in
    if Hashtbl.mem seen key then invalid "duplicate edge (%d,%d)" u v;
    Hashtbl.add seen key ();
    adj_lists.(u) <- v :: adj_lists.(u);
    adj_lists.(v) <- u :: adj_lists.(v)
  in
  List.iter add_edge edges;
  let adj = Array.map (fun l -> Array.of_list (List.sort compare l)) adj_lists in
  (* Connectivity check: n-1 edges + connected <=> tree. *)
  let visited = Array.make n false in
  let queue = Queue.create () in
  Queue.add 0 queue;
  visited.(0) <- true;
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    incr count;
    Array.iter
      (fun v ->
        if not visited.(v) then begin
          visited.(v) <- true;
          Queue.add v queue
        end)
      adj.(u)
  done;
  if !count <> n then invalid "graph is disconnected (%d of %d reachable)" !count n;
  { n; adj; parent_of = Array.make n None }

let n_nodes t = t.n

let nodes t = List.init t.n (fun i -> i)

let neighbors t u =
  if u < 0 || u >= t.n then invalid "node %d out of range" u;
  Array.to_list t.adj.(u)

let neighbors_arr t u =
  if u < 0 || u >= t.n then invalid "node %d out of range" u;
  t.adj.(u)

let iter_neighbors t u f =
  if u < 0 || u >= t.n then invalid "node %d out of range" u;
  Array.iter f t.adj.(u)

let neighbor_index t u v =
  if u < 0 || u >= t.n then invalid "node %d out of range" u;
  (* adj.(u) is sorted: binary search, no allocation. *)
  let a = t.adj.(u) in
  let lo = ref 0 and hi = ref (Array.length a - 1) and found = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = Array.unsafe_get a mid in
    if w = v then begin
      found := mid;
      lo := !hi + 1
    end
    else if w < v then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let degree t u =
  if u < 0 || u >= t.n then invalid "node %d out of range" u;
  Array.length t.adj.(u)

let is_leaf t u = degree t u <= 1 && t.n > 1

let are_neighbors t u v = Array.exists (fun w -> w = v) t.adj.(u)

let edges t =
  let acc = ref [] in
  for u = t.n - 1 downto 0 do
    Array.iter (fun v -> if u < v then acc := (u, v) :: !acc) t.adj.(u)
  done;
  !acc

let ordered_pairs t =
  List.concat_map (fun (u, v) -> [ (u, v); (v, u) ]) (edges t)

(* Parents for the tree rooted at [root], computed once and cached. *)
let parents t ~root =
  if root < 0 || root >= t.n then invalid "node %d out of range" root;
  match t.parent_of.(root) with
  | Some p -> p
  | None ->
    let p = Array.make t.n (-2) in
    p.(root) <- -1;
    let queue = Queue.create () in
    Queue.add root queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      Array.iter
        (fun v ->
          if p.(v) = -2 then begin
            p.(v) <- u;
            Queue.add v queue
          end)
        t.adj.(u)
    done;
    t.parent_of.(root) <- Some p;
    p

let parent_towards t ~root v =
  if v = root then invalid_arg "Tree.parent_towards: v equals root";
  (parents t ~root).(v)

let in_subtree t u v w =
  if not (are_neighbors t u v) then invalid "(%d,%d) is not an edge" u v;
  (* w is on u's side of edge (u,v) iff the v-parent chain from w reaches u
     without crossing to v; equivalently the u-rooted parent of the hop
     structure: w is in subtree(u,v) iff w = u or the path w..v passes
     through u; cheapest with the v-rooted parent array: w is on u's side
     iff w <> v and walking v-parents from w we meet u before v.  Simpler:
     w is in subtree(v,u) iff the u-rooted parent chain from w crosses the
     edge (v,u), i.e. iff the first hop of path u->w ... Use: w in
     subtree(u,v) iff w's u-rooted ancestor path does not start with v. *)
  if w = u then true
  else if w = v then false
  else begin
    (* First hop on the path from u to w: follow w's parents toward u. *)
    let p = parents t ~root:u in
    let rec first_hop x = if p.(x) = u then x else first_hop p.(x) in
    first_hop w <> v
  end

let subtree t u v =
  if not (are_neighbors t u v) then invalid "(%d,%d) is not an edge" u v;
  let visited = Array.make t.n false in
  visited.(v) <- true;
  (* block crossing to v *)
  visited.(u) <- true;
  let acc = ref [ u ] in
  let queue = Queue.create () in
  Queue.add u queue;
  while not (Queue.is_empty queue) do
    let x = Queue.pop queue in
    Array.iter
      (fun y ->
        if not visited.(y) then begin
          visited.(y) <- true;
          acc := y :: !acc;
          Queue.add y queue
        end)
      t.adj.(x)
  done;
  List.sort compare !acc

let subtree_size t u v =
  if not (are_neighbors t u v) then invalid "(%d,%d) is not an edge" u v;
  (* Trees are acyclic, so a DFS that remembers the node it came from
     needs no visited array: O(|subtree|) time and stack space, no node
     list built or sorted. *)
  let rec count node from acc =
    Array.fold_left
      (fun acc w -> if w = from then acc else count w node (acc + 1))
      acc t.adj.(node)
  in
  count u v 1

let path t u v =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then invalid "node out of range";
  let p = parents t ~root:u in
  let rec walk acc x = if x = u then u :: acc else walk (x :: acc) p.(x) in
  walk [] v

let dist t u v = List.length (path t u v) - 1

let bfs_order t ~root =
  if root < 0 || root >= t.n then invalid "node %d out of range" root;
  let visited = Array.make t.n false in
  visited.(root) <- true;
  let queue = Queue.create () in
  Queue.add root queue;
  let acc = ref [] in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    acc := u :: !acc;
    Array.iter
      (fun v ->
        if not visited.(v) then begin
          visited.(v) <- true;
          Queue.add v queue
        end)
      t.adj.(u)
  done;
  List.rev !acc

let eccentricity t u =
  let p = parents t ~root:u in
  let depth = Array.make t.n 0 in
  let m = ref 0 in
  List.iter
    (fun v ->
      if v <> u then begin
        depth.(v) <- depth.(p.(v)) + 1;
        if depth.(v) > !m then m := depth.(v)
      end)
    (bfs_order t ~root:u);
  !m

let diameter t =
  (* Double BFS: farthest node from 0, then its eccentricity. *)
  let far root =
    let p = parents t ~root in
    let depth = Array.make t.n 0 in
    let best = ref root and bestd = ref 0 in
    List.iter
      (fun v ->
        if v <> root then begin
          depth.(v) <- depth.(p.(v)) + 1;
          if depth.(v) > !bestd then begin
            bestd := depth.(v);
            best := v
          end
        end)
      (bfs_order t ~root);
    (!best, !bestd)
  in
  let a, _ = far 0 in
  snd (far a)

let pp fmt t =
  Format.fprintf fmt "@[<hov 2>tree(n=%d;@ edges=%a)@]" t.n
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@ ")
       (fun fmt (u, v) -> Format.fprintf fmt "%d-%d" u v))
    (edges t)

module Build = struct
  let path n = create ~n ~edges:(List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

  let star n =
    if n < 2 then invalid_arg "Tree.Build.star: need at least 2 nodes";
    create ~n ~edges:(List.init (n - 1) (fun i -> (0, i + 1)))

  let two_nodes () = path 2

  let kary ~k n =
    if k < 1 then invalid_arg "Tree.Build.kary: k must be >= 1";
    create ~n ~edges:(List.init (max 0 (n - 1)) (fun i -> (i + 1, i / k)))

  let binary n = kary ~k:2 n

  let caterpillar ~spine ~legs =
    if spine < 1 then invalid_arg "Tree.Build.caterpillar: spine must be >= 1";
    let n = spine * (1 + legs) in
    let spine_edges = List.init (spine - 1) (fun i -> (i, i + 1)) in
    let leg_edges =
      List.concat_map
        (fun s -> List.init legs (fun j -> (s, spine + (s * legs) + j)))
        (List.init spine (fun i -> i))
    in
    create ~n ~edges:(spine_edges @ leg_edges)

  let random rng n =
    if n < 1 then invalid_arg "Tree.Build.random: need at least 1 node";
    create ~n
      ~edges:(List.init (n - 1) (fun i -> (i + 1, Prng.Splitmix.int rng (i + 1))))

  let random_with_degree_bound rng ~max_degree n =
    if max_degree < 2 then
      invalid_arg "Tree.Build.random_with_degree_bound: max_degree >= 2";
    if n < 1 then invalid_arg "Tree.Build.random_with_degree_bound: need >= 1 node";
    let deg = Array.make n 0 in
    let edges = ref [] in
    for i = 1 to n - 1 do
      let candidates =
        List.filter (fun j -> deg.(j) < max_degree) (List.init i (fun j -> j))
      in
      let j =
        match candidates with
        | [] -> Prng.Splitmix.int rng i
        | l -> Prng.Splitmix.pick_list rng l
      in
      deg.(j) <- deg.(j) + 1;
      deg.(i) <- deg.(i) + 1;
      edges := (i, j) :: !edges
    done;
    create ~n ~edges:!edges
end

module Partition = struct
  (* Subtree-ownership sharding: the tree is rooted (default node 0)
     and nodes are emitted in iterative DFS post-order, in which every
     subtree is a contiguous run.  Cutting the post-order sequence into
     [k] balanced contiguous ranges therefore assigns each shard a
     union of whole subtrees (plus the partially-covered ancestors on
     the range boundary), which is what keeps the edge cut at
     O(k * depth) instead of O(n) for the balanced topologies the
     simulator cares about. *)

  type partition = {
    k : int;
    shard_of : int array;          (* node -> owning shard *)
    owned : int array array;       (* shard -> owned nodes, ascending *)
    cut : (int * int) list;        (* cross-shard edges, (min,max), sorted *)
    loads : int array;             (* shard -> summed node weight (1/node naive) *)
    strategy : string;             (* "naive" | "weighted" *)
  }

  let k t = t.k
  let shard_of t u = t.shard_of.(u)
  let owned t s = t.owned.(s)
  let cut_edges t = t.cut
  let edge_cut t = List.length t.cut
  let loads t = Array.copy t.loads
  let strategy t = t.strategy

  let balance_ratio t =
    let total = Array.fold_left ( + ) 0 t.loads in
    if total = 0 then 1.0
    else
      let mx = Array.fold_left max 0 t.loads in
      float_of_int mx /. (float_of_int total /. float_of_int t.k)

  (* Post-order of [tree] rooted at [root], iteratively (the million-
     node trees of the sharded benchmarks would overflow the stack on a
     recursive walk). *)
  let postorder tree ~root =
    let n = n_nodes tree in
    let order = Array.make n 0 in
    let parent = Array.make n (-1) in
    (* stack of (node, next-neighbour-index) *)
    let stack_node = Array.make n 0 and stack_idx = Array.make n 0 in
    let sp = ref 0 and out = ref 0 in
    stack_node.(0) <- root;
    stack_idx.(0) <- 0;
    sp := 1;
    while !sp > 0 do
      let u = stack_node.(!sp - 1) in
      let i = stack_idx.(!sp - 1) in
      let nbrs = neighbors_arr tree u in
      if i < Array.length nbrs then begin
        stack_idx.(!sp - 1) <- i + 1;
        let v = nbrs.(i) in
        if v <> parent.(u) then begin
          parent.(v) <- u;
          stack_node.(!sp) <- v;
          stack_idx.(!sp) <- 0;
          incr sp
        end
      end
      else begin
        decr sp;
        order.(!out) <- u;
        incr out
      end
    done;
    (order, parent)

  (* Shared tail of both constructors: derive owned lists, per-shard
     loads and the edge cut from a completed [shard_of] assignment. *)
  let finish tree ~k ~shard_of ~weights ~strategy =
    let n = n_nodes tree in
    let counts = Array.make k 0 in
    Array.iter (fun s -> counts.(s) <- counts.(s) + 1) shard_of;
    let owned = Array.map (fun c -> Array.make c 0) counts in
    let fill = Array.make k 0 in
    for u = 0 to n - 1 do
      (* ascending: u increases *)
      let s = shard_of.(u) in
      owned.(s).(fill.(s)) <- u;
      fill.(s) <- fill.(s) + 1
    done;
    let loads = Array.make k 0 in
    for u = 0 to n - 1 do
      let s = shard_of.(u) in
      loads.(s) <- loads.(s) + (match weights with None -> 1 | Some w -> w.(u))
    done;
    let cut =
      List.filter (fun (u, v) -> shard_of.(u) <> shard_of.(v)) (edges tree)
    in
    { k; shard_of; owned; cut; loads; strategy }

  let create ?(root = 0) tree ~shards =
    let n = n_nodes tree in
    if shards < 1 then invalid_arg "Tree.Partition.create: shards must be >= 1";
    if root < 0 || root >= n then
      invalid_arg "Tree.Partition.create: root out of range";
    let k = min shards n in
    let order, _parent = postorder tree ~root in
    let shard_of = Array.make n 0 in
    (* balanced contiguous ranges: the first [n mod k] shards own one
       extra node *)
    let base = n / k and rem = n mod k in
    let pos = ref 0 in
    for s = 0 to k - 1 do
      let size = base + (if s < rem then 1 else 0) in
      for _ = 1 to size do
        shard_of.(order.(!pos)) <- s;
        incr pos
      done
    done;
    (* k <= n and ranges are balanced, so every shard owns >= 1 node *)
    finish tree ~k ~shard_of ~weights:None ~strategy:"naive"

  let subtree_weights ?(root = 0) tree =
    let n = n_nodes tree in
    if root < 0 || root >= n then
      invalid_arg "Tree.Partition.subtree_weights: root out of range";
    let order, parent = postorder tree ~root in
    let size = Array.make n 1 in
    (* post-order emits children before parents, so one pass suffices *)
    Array.iter
      (fun u -> if parent.(u) >= 0 then size.(parent.(u)) <- size.(parent.(u)) + size.(u))
      order;
    size

  let create_weighted ?(root = 0) tree ~shards ~weights =
    let n = n_nodes tree in
    if shards < 1 then
      invalid_arg "Tree.Partition.create_weighted: shards must be >= 1";
    if root < 0 || root >= n then
      invalid_arg "Tree.Partition.create_weighted: root out of range";
    if Array.length weights <> n then
      invalid_arg
        (Printf.sprintf
           "Tree.Partition.create_weighted: %d weights for %d nodes"
           (Array.length weights) n);
    Array.iter
      (fun w ->
        if w < 0 then
          invalid_arg "Tree.Partition.create_weighted: negative weight")
      weights;
    let k = min shards n in
    let order, _parent = postorder tree ~root in
    let w = Array.map (fun u -> weights.(u)) order in
    let total = Array.fold_left ( + ) 0 w in
    let maxw = Array.fold_left max 0 w in
    (* Minimal L such that the post-order sequence packs into <= k
       contiguous ranges of sum <= L (classic linear-partition bound;
       greedy prefix packing is exact for the feasibility test).
       Binary search over [maxw, total]. *)
    let ranges_needed limit =
      let r = ref 1 and acc = ref 0 in
      for i = 0 to n - 1 do
        if !acc + w.(i) > limit then begin
          incr r;
          acc := w.(i)
        end
        else acc := !acc + w.(i)
      done;
      !r
    in
    let lo = ref maxw and hi = ref total in
    while !lo < !hi do
      let mid = !lo + ((!hi - !lo) / 2) in
      if ranges_needed mid <= k then hi := mid else lo := mid + 1
    done;
    let limit = !lo in
    (* Reconstruct exactly k non-empty ranges: greedy up to [limit],
       but cut early once only one node per remaining shard is left
       (so every shard owns >= 1 node), and let the final shard absorb
       the remainder (which the feasibility bound keeps <= limit). *)
    let shard_of = Array.make n 0 in
    let pos = ref 0 in
    for s = 0 to k - 1 do
      let remaining = k - s - 1 in
      let acc = ref 0 and len = ref 0 and stop = ref false in
      while not !stop do
        if !pos >= n - remaining then stop := true
        else if remaining > 0 && !len > 0 && !acc + w.(!pos) > limit then
          stop := true
        else begin
          acc := !acc + w.(!pos);
          shard_of.(order.(!pos)) <- s;
          incr pos;
          incr len
        end
      done
    done;
    finish tree ~k ~shard_of ~weights:(Some weights) ~strategy:"weighted"

  let check tree (t : partition) =
    let fail fmt = Format.kasprintf failwith ("Tree.Partition.check: " ^^ fmt) in
    let n = n_nodes tree in
    if t.k < 1 then fail "k = %d" t.k;
    if Array.length t.shard_of <> n then
      fail "shard_of covers %d of %d nodes" (Array.length t.shard_of) n;
    if Array.length t.loads <> t.k then
      fail "loads has %d entries for %d shards" (Array.length t.loads) t.k;
    let seen = Array.make n 0 in
    Array.iteri
      (fun s nodes ->
        Array.iter
          (fun u ->
            if u < 0 || u >= n then fail "shard %d owns out-of-range node %d" s u;
            if t.shard_of.(u) <> s then
              fail "node %d in shard %d's list but shard_of says %d" u s
                t.shard_of.(u);
            seen.(u) <- seen.(u) + 1)
          nodes)
      t.owned;
    Array.iteri
      (fun u c -> if c <> 1 then fail "node %d owned %d times" u c)
      seen;
    List.iter
      (fun (u, v) ->
        if not (are_neighbors tree u v) then fail "cut edge (%d,%d) not an edge" u v;
        if t.shard_of.(u) = t.shard_of.(v) then
          fail "cut edge (%d,%d) is intra-shard" u v)
      t.cut;
    let cut' =
      List.length
        (List.filter (fun (u, v) -> t.shard_of.(u) <> t.shard_of.(v)) (edges tree))
    in
    if cut' <> List.length t.cut then
      fail "cut lists %d edges, tree has %d cross-shard edges"
        (List.length t.cut) cut'
end

module Dyn = struct
  (* Mutable membership view over a fixed capacity tree.  The node set
     and adjacency never change (every array-backed consumer — slot
     arenas, partitions, transports — stays valid); what changes is
     which nodes are *active*.  The invariant maintained here is the one
     the aggregation protocol needs: the active set is nonempty and
     induces a connected subtree of the capacity tree.  In a tree that
     pins the legal moves exactly: only an active node with exactly one
     active neighbour (an active leaf) may detach, and only an inactive
     node with at least one active capacity-neighbour may attach
     (attaching to several active neighbours cannot close a cycle — the
     capacity graph has none). *)

  type dyn = {
    base : t;
    active : Bytes.t;               (* per node *)
    active_deg : int array;         (* # active neighbours, maintained *)
    mutable active_count : int;
  }

  let bget b i = Bytes.unsafe_get b i <> '\000'
  let bset b i v = Bytes.unsafe_set b i (if v then '\001' else '\000')

  let tree d = d.base
  let is_active d u =
    if u < 0 || u >= d.base.n then invalid "node %d out of range" u;
    bget d.active u
  let active_count d = d.active_count
  let active_degree d u =
    if u < 0 || u >= d.base.n then invalid "node %d out of range" u;
    d.active_deg.(u)

  let active_nodes d =
    let acc = ref [] in
    for u = d.base.n - 1 downto 0 do
      if bget d.active u then acc := u :: !acc
    done;
    !acc

  let create ?(detached = []) base =
    let n = base.n in
    let active = Bytes.make n '\001' in
    List.iter
      (fun u ->
        if u < 0 || u >= n then
          invalid_arg (Printf.sprintf "Tree.Dyn.create: node %d out of range" u);
        if not (bget active u) then
          invalid_arg (Printf.sprintf "Tree.Dyn.create: node %d detached twice" u);
        bset active u false)
      detached;
    let active_count = n - List.length detached in
    if active_count = 0 then
      invalid_arg "Tree.Dyn.create: active set is empty";
    (* the active set must induce a connected subtree *)
    let start = ref (-1) in
    for u = n - 1 downto 0 do
      if bget active u then start := u
    done;
    let visited = Bytes.make n '\000' in
    let queue = Queue.create () in
    Queue.add !start queue;
    bset visited !start true;
    let seen = ref 0 in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      incr seen;
      Array.iter
        (fun v ->
          if bget active v && not (bget visited v) then begin
            bset visited v true;
            Queue.add v queue
          end)
        base.adj.(u)
    done;
    if !seen <> active_count then
      invalid_arg "Tree.Dyn.create: active set is disconnected";
    let active_deg = Array.make n 0 in
    for u = 0 to n - 1 do
      let k = ref 0 in
      Array.iter (fun v -> if bget active v then incr k) base.adj.(u);
      active_deg.(u) <- !k
    done;
    { base; active; active_deg; active_count }

  let can_detach d u =
    if u < 0 || u >= d.base.n then invalid "node %d out of range" u;
    if not (bget d.active u) then Error "node is not active"
    else if d.active_count < 2 then Error "cannot detach the last active node"
    else if d.active_deg.(u) <> 1 then
      Error
        (Printf.sprintf "node has %d active neighbours (need exactly 1)"
           d.active_deg.(u))
    else begin
      (* the unique active neighbour is the handoff point *)
      let h = ref (-1) in
      Array.iter (fun v -> if bget d.active v then h := v) d.base.adj.(u);
      Ok !h
    end

  let detach d u =
    match can_detach d u with
    | Error m -> invalid_arg ("Tree.Dyn.detach: " ^ m)
    | Ok h ->
      bset d.active u false;
      d.active_count <- d.active_count - 1;
      Array.iter (fun v -> d.active_deg.(v) <- d.active_deg.(v) - 1) d.base.adj.(u);
      h

  let can_attach d u =
    if u < 0 || u >= d.base.n then invalid "node %d out of range" u;
    if bget d.active u then Error "node is already active"
    else begin
      let pts = ref [] in
      Array.iter (fun v -> if bget d.active v then pts := v :: !pts) d.base.adj.(u);
      match List.rev !pts with
      | [] -> Error "no active capacity-neighbour to attach to"
      | l -> Ok l
    end

  let attach d u =
    match can_attach d u with
    | Error m -> invalid_arg ("Tree.Dyn.attach: " ^ m)
    | Ok pts ->
      bset d.active u true;
      d.active_count <- d.active_count + 1;
      Array.iter (fun v -> d.active_deg.(v) <- d.active_deg.(v) + 1) d.base.adj.(u);
      pts

  (* Membership-aware sharding: the weighted partitioner over unit
     weights on active nodes (detached nodes weigh nothing, so shard
     loads balance over the live population while contiguity — and the
     validity of every node's shard assignment — is preserved). *)
  let partition ?root d ~shards =
    let w = Array.make d.base.n 0 in
    for u = 0 to d.base.n - 1 do
      if bget d.active u then w.(u) <- 1
    done;
    Partition.create_weighted ?root d.base ~shards ~weights:w

  let check d =
    let fail fmt = Format.kasprintf failwith ("Tree.Dyn.check: " ^^ fmt) in
    let n = d.base.n in
    let count = ref 0 in
    for u = 0 to n - 1 do
      if bget d.active u then incr count;
      let k = ref 0 in
      Array.iter (fun v -> if bget d.active v then incr k) d.base.adj.(u);
      if !k <> d.active_deg.(u) then
        fail "node %d: active_deg %d <> %d" u d.active_deg.(u) !k
    done;
    if !count <> d.active_count then
      fail "active_count %d <> %d" d.active_count !count;
    if !count = 0 then fail "active set is empty";
    let start = ref (-1) in
    for u = n - 1 downto 0 do
      if bget d.active u then start := u
    done;
    let visited = Bytes.make n '\000' in
    let queue = Queue.create () in
    Queue.add !start queue;
    bset visited !start true;
    let seen = ref 0 in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      incr seen;
      Array.iter
        (fun v ->
          if bget d.active v && not (bget visited v) then begin
            bset visited v true;
            Queue.add v queue
          end)
        d.base.adj.(u)
    done;
    if !seen <> !count then
      fail "active set disconnected (%d of %d reachable)" !seen !count
end
