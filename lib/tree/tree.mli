(** Tree network topologies.

    The aggregation problem of the paper is posed over a finite set of
    nodes arranged in an (unrooted) tree [T] with reliable FIFO channels
    between neighbouring nodes.  This module provides the immutable
    topology: adjacency, the [subtree(u,v)] notion used throughout the
    paper (the component of [T - (u,v)] containing [u]), and the
    "[u]-parent" relation (the parent of [v] in [T] rooted at [u]).

    Nodes are integers [0 .. n_nodes t - 1]. *)

type t

exception Invalid_tree of string

val create : n:int -> edges:(int * int) list -> t
(** [create ~n ~edges] builds a tree on [n >= 1] nodes.

    @raise Invalid_tree if the edge set is not a spanning tree of
    [{0, .., n-1}] (wrong cardinality, out-of-range endpoint, self loop,
    duplicate edge, or disconnected). *)

val n_nodes : t -> int

val nodes : t -> int list
(** All nodes, ascending. *)

val edges : t -> (int * int) list
(** Undirected edges, each reported once with smaller endpoint first. *)

val ordered_pairs : t -> (int * int) list
(** All ordered pairs of neighbouring nodes: both [(u,v)] and [(v,u)]. *)

val neighbors : t -> int -> int list
(** Neighbours of a node, ascending. *)

val neighbors_arr : t -> int -> int array
(** Neighbours of a node, ascending, as an array.  This is the tree's
    internal adjacency array, returned without copying so hot paths
    (message scheduling, broadcast loops) can iterate allocation-free:
    callers must not mutate it. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** [iter_neighbors t u f] applies [f] to each neighbour of [u] in
    ascending order, without allocating. *)

val neighbor_index : t -> int -> int -> int
(** [neighbor_index t u v] is the position of [v] in [neighbors_arr t u]
    (binary search over the sorted adjacency, O(log degree)), or [-1] if
    [v] is not a neighbour of [u]. *)

val degree : t -> int -> int

val is_leaf : t -> int -> bool

val are_neighbors : t -> int -> int -> bool

val subtree : t -> int -> int -> int list
(** [subtree t u v] is the node set of the component of [T - (u,v)] that
    contains [u] (the paper's [subtree(u,v)]).  [u] and [v] must be
    neighbours. *)

val subtree_size : t -> int -> int -> int
(** [subtree_size t u v] = [List.length (subtree t u v)], computed in
    O(|subtree|) time without materialising the node list. *)

val in_subtree : t -> int -> int -> int -> bool
(** [in_subtree t u v w] tests whether [w] is in [subtree t u v].
    Constant time after the first query for the pair. *)

val parent_towards : t -> root:int -> int -> int
(** [parent_towards t ~root v] is the [root]-parent of [v]: the parent of
    [v] in [T] rooted at [root], i.e. the first hop on the path from [v]
    to [root].  Requires [v <> root]. *)

val path : t -> int -> int -> int list
(** [path t u v] is the unique simple path from [u] to [v], inclusive of
    both endpoints. *)

val dist : t -> int -> int -> int
(** Path length in edges. *)

val bfs_order : t -> root:int -> int list
(** Nodes in breadth-first order from [root]. *)

val eccentricity : t -> int -> int

val diameter : t -> int

val pp : Format.formatter -> t -> unit

(** Standard tree topologies used by the paper's motivating systems and
    by our experiments: paths and stars are the extreme cases for
    per-edge analysis; balanced k-ary trees model SDIMS/Astrolabe-style
    aggregation hierarchies; random attachment trees model irregular
    overlays; caterpillars stress the mix of internal path and leaf
    fan-out. *)
module Build : sig
  val path : int -> t
  (** [path n]: nodes [0 - 1 - 2 - ... - n-1]. *)

  val star : int -> t
  (** [star n]: node [0] is the hub, nodes [1..n-1] are leaves. *)

  val two_nodes : unit -> t
  (** The 2-node tree used by the Theorem 3 adversary. *)

  val kary : k:int -> int -> t
  (** [kary ~k n]: complete-as-possible k-ary tree in BFS numbering;
      node [i]'s parent is [(i-1)/k]. *)

  val binary : int -> t
  (** [binary n] = [kary ~k:2 n]. *)

  val caterpillar : spine:int -> legs:int -> t
  (** [caterpillar ~spine ~legs]: a path of [spine] nodes, each carrying
      [legs] leaves. *)

  val random : Prng.Splitmix.t -> int -> t
  (** [random rng n]: uniform random attachment — node [i >= 1] connects
      to a uniformly chosen node [j < i]. *)

  val random_with_degree_bound : Prng.Splitmix.t -> max_degree:int -> int -> t
  (** Random attachment restricted to nodes whose degree is still below
      [max_degree]. *)
end

(** Subtree-ownership sharding for the multicore simulation engine.

    The tree is rooted and cut into [k] balanced contiguous ranges of
    its DFS post-order; each range is a union of whole subtrees (plus
    the boundary ancestors), so each shard owns a connected-ish clump
    and the cross-shard edge cut stays O(k·depth) on balanced
    topologies.  The partition is a pure function of (tree, root, k) —
    no randomness — so sharded runs are reproducible. *)
module Partition : sig
  type partition

  val create : ?root:int -> t -> shards:int -> partition
  (** [create tree ~shards] partitions the nodes into
      [min shards (n_nodes tree)] shards of (near-)equal node count.
      [root] (default 0) anchors the post-order.  A [shards] larger
      than the node count clamps to one node per shard (so single-node
      trees always yield [k = 1]); [shards < 1] raises
      [Invalid_argument]. *)

  val create_weighted : ?root:int -> t -> shards:int -> weights:int array -> partition
  (** [create_weighted tree ~shards ~weights] is [create] with a cost
      model: [weights.(u)] estimates the work node [u] generates
      (deliveries, typically — see {!subtree_weights} for the static
      estimate, or replay measured per-node delivery counts from a
      profile run).  The post-order sequence is cut into
      [min shards (n_nodes tree)] contiguous non-empty ranges
      minimizing the maximum range weight (exact linear partitioning:
      binary search on the bottleneck + greedy reconstruction,
      O(n log sum(weights))).  Contiguity is preserved, so the
      edge-cut shape guarantees of [create] still hold.
      @raise Invalid_argument on [shards < 1], a weights array whose
      length differs from the node count, or a negative weight. *)

  val subtree_weights : ?root:int -> t -> int array
  (** Static cost model for {!create_weighted}: [weights.(u)] is the
      size of the subtree rooted at [u] when the tree is rooted at
      [root] (default 0) — a proxy for the rootward traffic that
      passes through [u]. *)

  val loads : partition -> int array
  (** Per-shard summed node weight under the cost model the partition
      was built with (1 per node for {!create}).  Fresh copy. *)

  val balance_ratio : partition -> float
  (** Max shard load over mean shard load; 1.0 is perfectly balanced.
      1.0 when the total load is zero. *)

  val strategy : partition -> string
  (** ["naive"] for {!create}, ["weighted"] for {!create_weighted}. *)

  val k : partition -> int
  (** Number of shards actually used. *)

  val shard_of : partition -> int -> int
  (** Owning shard of a node. *)

  val owned : partition -> int -> int array
  (** Nodes owned by a shard, ascending.  Returned without copying:
      callers must not mutate. *)

  val cut_edges : partition -> (int * int) list
  (** Cross-shard edges, smaller endpoint first, sorted.  Each is
      served by exactly one mailbox per direction. *)

  val edge_cut : partition -> int
  (** [List.length (cut_edges p)]. *)

  val check : t -> partition -> unit
  (** Validate: every node owned exactly once, shard_of consistent with
      the owned lists, the cut is exactly the set of cross-shard edges.
      @raise Failure on the first violation. *)
end

(** Mutable membership view over a fixed capacity tree (churn).

    Node ids, adjacency, neighbour slot order and arena geometry never
    change — every array-backed consumer built against the capacity
    tree stays valid across membership changes.  What changes is which
    nodes are {e active}.  The invariant is the one the aggregation
    protocol needs: the active set is nonempty and induces a connected
    subtree.  In a tree that pins the legal moves exactly: only an
    active node with exactly one active neighbour (an active leaf) may
    detach — its unique active neighbour is the {e handoff point} for
    state transfer — and only an inactive node with at least one active
    capacity-neighbour may attach (several attach points cannot close a
    cycle, the capacity graph has none).  [active_degree] is maintained
    incrementally, so eligibility queries are O(degree) worst case and
    O(1) amortized under churn. *)
module Dyn : sig
  type dyn

  val create : ?detached:int list -> t -> dyn
  (** All nodes active except [detached] (default none).
      @raise Invalid_argument if [detached] repeats or out-of-range
      nodes, or leaves the active set empty or disconnected. *)

  val tree : dyn -> t
  val is_active : dyn -> int -> bool
  val active_count : dyn -> int
  val active_nodes : dyn -> int list
  (** Active nodes, ascending. *)

  val active_degree : dyn -> int -> int
  (** Number of active neighbours (maintained incrementally). *)

  val can_detach : dyn -> int -> (int, string) result
  (** [Ok h] iff the node is an active leaf of the active subtree (and
      not the last active node); [h] is its handoff neighbour. *)

  val detach : dyn -> int -> int
  (** Detach an active leaf, returning the handoff neighbour.
      @raise Invalid_argument when {!can_detach} says [Error]. *)

  val can_attach : dyn -> int -> (int list, string) result
  (** [Ok points] iff the node is inactive with at least one active
      capacity-neighbour; [points] are those neighbours, ascending. *)

  val attach : dyn -> int -> int list
  (** Attach an inactive node, returning its attach points.
      @raise Invalid_argument when {!can_attach} says [Error]. *)

  val partition : ?root:int -> dyn -> shards:int -> Partition.partition
  (** Membership-aware sharding: {!Partition.create_weighted} with unit
      weight on active nodes and zero on detached ones, so shard loads
      balance over the live population.  Detached nodes still get a
      (weightless) shard assignment — they generate no traffic until
      they attach, at which point re-partitioning at a reconfiguration
      barrier rebalances them in. *)

  val check : dyn -> unit
  (** Audit counters and connectivity. @raise Failure on violation. *)
end
