let float_equal a b =
  (* Tolerant comparison: aggregation reorders float additions. *)
  let eps = 1e-9 in
  Float.abs (a -. b) <= eps *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

(* Wire-codec primitives.  [lib/agg] sits below the simulator, so these
   mirror (not reuse) [Simul.Frame]'s accessors: 8-byte little-endian
   fields.  Native ints are assembled char by char — allocation-free
   and total modulo 2^63; floats go through their IEEE bits (exact
   round-trip, [Int64] boxing accepted since float values box anyway). *)

let put_int b pos v =
  Bytes.unsafe_set b pos (Char.unsafe_chr (v land 0xff));
  Bytes.unsafe_set b (pos + 1) (Char.unsafe_chr ((v asr 8) land 0xff));
  Bytes.unsafe_set b (pos + 2) (Char.unsafe_chr ((v asr 16) land 0xff));
  Bytes.unsafe_set b (pos + 3) (Char.unsafe_chr ((v asr 24) land 0xff));
  Bytes.unsafe_set b (pos + 4) (Char.unsafe_chr ((v asr 32) land 0xff));
  Bytes.unsafe_set b (pos + 5) (Char.unsafe_chr ((v asr 40) land 0xff));
  Bytes.unsafe_set b (pos + 6) (Char.unsafe_chr ((v asr 48) land 0xff));
  Bytes.unsafe_set b (pos + 7) (Char.unsafe_chr ((v asr 56) land 0xff))

(* straight-line: a local helper closure would be a minor allocation
   per call under the non-flambda compiler *)
let take_int b pos =
  Char.code (Bytes.unsafe_get b pos)
  lor (Char.code (Bytes.unsafe_get b (pos + 1)) lsl 8)
  lor (Char.code (Bytes.unsafe_get b (pos + 2)) lsl 16)
  lor (Char.code (Bytes.unsafe_get b (pos + 3)) lsl 24)
  lor (Char.code (Bytes.unsafe_get b (pos + 4)) lsl 32)
  lor (Char.code (Bytes.unsafe_get b (pos + 5)) lsl 40)
  lor (Char.code (Bytes.unsafe_get b (pos + 6)) lsl 48)
  lor (Char.code (Bytes.unsafe_get b (pos + 7)) lsl 56)

let put_float b pos v = Bytes.set_int64_le b pos (Int64.bits_of_float v)
let take_float b pos = Int64.float_of_bits (Bytes.get_int64_le b pos)

module Sum = struct
  type t = float

  let name = "sum"
  let identity = 0.0
  let combine = ( +. )
  let inverse = Some ( -. )
  let equal = float_equal
  let pp = Format.pp_print_float
  let of_float f = f
  let wire_size _ = 8

  let encode b pos v =
    put_float b pos v;
    pos + 8

  let decode b pos _ = take_float b pos
end

module Min = struct
  type t = float

  let name = "min"
  let identity = Float.infinity
  let combine = Float.min
  let inverse = None
  let equal = float_equal
  let pp = Format.pp_print_float
  let of_float f = f
  let wire_size _ = 8

  let encode b pos v =
    put_float b pos v;
    pos + 8

  let decode b pos _ = take_float b pos
end

module Max = struct
  type t = float

  let name = "max"
  let identity = Float.neg_infinity
  let combine = Float.max
  let inverse = None
  let equal = float_equal
  let pp = Format.pp_print_float
  let of_float f = f
  let wire_size _ = 8

  let encode b pos v =
    put_float b pos v;
    pos + 8

  let decode b pos _ = take_float b pos
end

module Sum_int = struct
  type t = int

  let name = "sum-int"
  let identity = 0
  let combine = ( + )
  let inverse = Some ( - )
  let equal = Int.equal
  let pp = Format.pp_print_int
  let of_float f = int_of_float f
  let wire_size _ = 8

  let encode b pos v =
    put_int b pos v;
    pos + 8

  let decode b pos _ = take_int b pos
end

module Count = struct
  type t = int

  let name = "count"
  let identity = 0
  let combine = ( + )
  let inverse = Some ( - )
  let equal = Int.equal
  let pp = Format.pp_print_int
  let of_float f = if f <> 0.0 then 1 else 0
  let wire_size _ = 8

  let encode b pos v =
    put_int b pos v;
    pos + 8

  let decode b pos _ = take_int b pos
end

module Avg = struct
  type t = float * int

  let name = "avg"
  let identity = (0.0, 0)
  let combine (s1, c1) (s2, c2) = (s1 +. s2, c1 + c2)
  let inverse = Some (fun (s1, c1) (s2, c2) -> (s1 -. s2, c1 - c2))
  let equal (s1, c1) (s2, c2) = float_equal s1 s2 && c1 = c2
  let pp fmt (s, c) = Format.fprintf fmt "(sum=%g,count=%d)" s c
  let of_float f = (f, 1)
  let of_sample f = (f, 1)
  let to_float (s, c) = if c = 0 then 0.0 else s /. float_of_int c
  let wire_size _ = 16

  let encode b pos (s, c) =
    put_float b pos s;
    put_int b (pos + 8) c;
    pos + 16

  let decode b pos _ = (take_float b pos, take_int b (pos + 8))
end

module Union = struct
  (* Set union over small integer element sets (membership aggregation:
     "which machines are present / which services are offered").
     Represented as strictly sorted lists, so equality is structural. *)
  type t = int list

  let name = "union"
  let identity = []

  let rec combine a b =
    match (a, b) with
    | [], l | l, [] -> l
    | x :: xs, y :: ys ->
      if x < y then x :: combine xs b
      else if y < x then y :: combine a ys
      else x :: combine xs ys

  let inverse = None

  let equal = ( = )

  let pp fmt s =
    Format.fprintf fmt "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
         Format.pp_print_int)
      s

  let of_float f = [ int_of_float f ]
  let singleton x = [ x ]
  let of_list l = List.sort_uniq compare l
  let mem x s = List.mem x s

  (* 8 bytes per element, in list (= ascending) order.  The element
     count rides in the caller's length field ([decode]'s [len] is the
     byte span), which caps one set at 8191 elements under a u16
     length prefix — far beyond any membership set in this repo. *)
  let wire_size s = 8 * List.length s

  let encode b pos s =
    List.fold_left
      (fun pos x ->
        put_int b pos x;
        pos + 8)
      pos s

  let decode b pos len =
    let rec go i acc =
      if i < 0 then acc else go (i - 1) (take_int b (pos + (8 * i)) :: acc)
    in
    go ((len / 8) - 1) []
end
