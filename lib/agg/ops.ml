let float_equal a b =
  (* Tolerant comparison: aggregation reorders float additions. *)
  let eps = 1e-9 in
  Float.abs (a -. b) <= eps *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

module Sum = struct
  type t = float

  let name = "sum"
  let identity = 0.0
  let combine = ( +. )
  let inverse = Some ( -. )
  let equal = float_equal
  let pp = Format.pp_print_float
  let of_float f = f
end

module Min = struct
  type t = float

  let name = "min"
  let identity = Float.infinity
  let combine = Float.min
  let inverse = None
  let equal = float_equal
  let pp = Format.pp_print_float
  let of_float f = f
end

module Max = struct
  type t = float

  let name = "max"
  let identity = Float.neg_infinity
  let combine = Float.max
  let inverse = None
  let equal = float_equal
  let pp = Format.pp_print_float
  let of_float f = f
end

module Sum_int = struct
  type t = int

  let name = "sum-int"
  let identity = 0
  let combine = ( + )
  let inverse = Some ( - )
  let equal = Int.equal
  let pp = Format.pp_print_int
  let of_float f = int_of_float f
end

module Count = struct
  type t = int

  let name = "count"
  let identity = 0
  let combine = ( + )
  let inverse = Some ( - )
  let equal = Int.equal
  let pp = Format.pp_print_int
  let of_float f = if f <> 0.0 then 1 else 0
end

module Avg = struct
  type t = float * int

  let name = "avg"
  let identity = (0.0, 0)
  let combine (s1, c1) (s2, c2) = (s1 +. s2, c1 + c2)
  let inverse = Some (fun (s1, c1) (s2, c2) -> (s1 -. s2, c1 - c2))
  let equal (s1, c1) (s2, c2) = float_equal s1 s2 && c1 = c2
  let pp fmt (s, c) = Format.fprintf fmt "(sum=%g,count=%d)" s c
  let of_float f = (f, 1)
  let of_sample f = (f, 1)
  let to_float (s, c) = if c = 0 then 0.0 else s /. float_of_int c
end

module Union = struct
  (* Set union over small integer element sets (membership aggregation:
     "which machines are present / which services are offered").
     Represented as strictly sorted lists, so equality is structural. *)
  type t = int list

  let name = "union"
  let identity = []

  let rec combine a b =
    match (a, b) with
    | [], l | l, [] -> l
    | x :: xs, y :: ys ->
      if x < y then x :: combine xs b
      else if y < x then y :: combine a ys
      else x :: combine xs ys

  let inverse = None

  let equal = ( = )

  let pp fmt s =
    Format.fprintf fmt "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
         Format.pp_print_int)
      s

  let of_float f = [ int_of_float f ]
  let singleton x = [ x ]
  let of_list l = List.sort_uniq compare l
  let mem x s = List.mem x s
end
