module type S = sig
  type t

  val name : string
  val identity : t
  val combine : t -> t -> t
  val inverse : (t -> t -> t) option
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
  val of_float : float -> t
  val wire_size : t -> int
  val encode : Bytes.t -> int -> t -> int
  val decode : Bytes.t -> int -> int -> t
end

type 'a t = (module S with type t = 'a)

let fold (type a) (module Op : S with type t = a) vs =
  List.fold_left Op.combine Op.identity vs
