(** Aggregation operators.

    The paper assumes an aggregation operator [+] ("oplus") that is
    commutative, associative, and has an identity element [0]; the
    aggregate over a node set is the operator folded over the local
    values.  This is exactly a commutative monoid, which is what
    {!module-type:S} captures.  [Mechanism] and every algorithm in this
    repository are functors over it, so the same protocol code runs SUM,
    MIN, MAX, COUNT, or AVG aggregation. *)

module type S = sig
  type t

  val name : string

  val identity : t
  (** Identity element of {!combine}. *)

  val combine : t -> t -> t
  (** The aggregation operator.  Must be commutative and associative with
      {!identity} as identity (checked by property tests). *)

  val inverse : (t -> t -> t) option
  (** [Some sub] when the monoid is a group (or close enough): [sub
      (combine x y) y] must equal [x] up to {!equal}'s tolerance.  SUM
      and COUNT are invertible; MIN/MAX/UNION are not ([None]).  The
      mechanism uses this to answer [subval] (the aggregate excluding
      one neighbour's cache) in O(1) from a cached [gval] instead of
      re-folding all neighbour caches. *)

  val equal : t -> t -> bool

  val pp : Format.formatter -> t -> unit

  val of_float : float -> t
  (** Injection used by workload generators, which draw float samples. *)
end

type 'a t = (module S with type t = 'a)

val fold : 'a t -> 'a list -> 'a
(** [fold op vs] aggregates a list of values (identity for the empty
    list). *)
