(** Aggregation operators.

    The paper assumes an aggregation operator [+] ("oplus") that is
    commutative, associative, and has an identity element [0]; the
    aggregate over a node set is the operator folded over the local
    values.  This is exactly a commutative monoid, which is what
    {!module-type:S} captures.  [Mechanism] and every algorithm in this
    repository are functors over it, so the same protocol code runs SUM,
    MIN, MAX, COUNT, or AVG aggregation. *)

module type S = sig
  type t

  val name : string

  val identity : t
  (** Identity element of {!combine}. *)

  val combine : t -> t -> t
  (** The aggregation operator.  Must be commutative and associative with
      {!identity} as identity (checked by property tests). *)

  val inverse : (t -> t -> t) option
  (** [Some sub] when the monoid is a group (or close enough): [sub
      (combine x y) y] must equal [x] up to {!equal}'s tolerance.  SUM
      and COUNT are invertible; MIN/MAX/UNION are not ([None]).  The
      mechanism uses this to answer [subval] (the aggregate excluding
      one neighbour's cache) in O(1) from a cached [gval] instead of
      re-folding all neighbour caches. *)

  val equal : t -> t -> bool

  val pp : Format.formatter -> t -> unit

  val of_float : float -> t
  (** Injection used by workload generators, which draw float samples. *)

  (** {2 Wire codec}

      Fixed little-endian binary encoding used by the flat-frame data
      plane ([Simul.Frame]); [decode (encode b pos v) = v] exactly
      (bit-for-bit, including float payloads). *)

  val wire_size : t -> int
  (** Encoded byte length of one value. *)

  val encode : Bytes.t -> int -> t -> int
  (** [encode b pos v] writes the value at [pos] (the caller has
      ensured [wire_size v] bytes of room) and returns the position
      one past the last byte written. *)

  val decode : Bytes.t -> int -> int -> t
  (** [decode b pos len] reads the value encoded at [pos] spanning
      [len] bytes ([len] is redundant for fixed-size operators and
      carries the element count for variable-size ones). *)
end

type 'a t = (module S with type t = 'a)

val fold : 'a t -> 'a list -> 'a
(** [fold op vs] aggregates a list of values (identity for the empty
    list). *)
