(** The reproduction experiments (see EXPERIMENTS.md for the index).

    Each function prints one table regenerating a figure, table, or
    theorem of the paper and returns the headline scalar used by the
    harness summary:

    - {!e1_figure2}: number of mismatching rows (expect 0);
    - {!e2_figure4}: number of non-trivial transitions (expect 21);
    - {!e3_figure5}: the LP optimum c* (expect 2.5);
    - {!e4_theorem1}: max observed RWW/OPT ratio (bound 2.5);
    - {!e5_theorem2}: max observed RWW/nice ratio (bound ~5);
    - {!e6_theorem3}: min adversarial ratio over the (a,b) grid (2.5);
    - {!e7_motivation}: 1 iff the static-vs-adaptive shape holds;
    - {!e8_consistency}: total consistency violations (expect 0). *)

val e1_figure2 : unit -> int
val e2_figure4 : unit -> int
val e3_figure5 : unit -> float
val e4_theorem1 : ?n:int -> unit -> float
val e5_theorem2 : ?n:int -> unit -> float
val e6_theorem3 : ?rounds:int -> unit -> float
val e7_motivation : ?n:int -> unit -> int
val e8_consistency : ?runs:int -> unit -> int

val eager_break_policy : Oat.Policy.factory
(** The grant-eagerly/release-eagerly policy used to exhibit Figure 2's
    noop-release row (RWW itself never produces it, Lemma 4.1). *)

val e9_ab_certificates : unit -> float
(** E9 (ablation): LP-certified competitive ratio for every (a,b) in a
    4x4 grid, against the Theorem 3 adversarial lower bound.  Returns
    the class minimum (expect 2.5, at (1,2)). *)

val e10_coupling_gap : unit -> int
(** E10 (ablation): exact coupled offline optimum vs the per-edge
    relaxation on small trees.  Returns the maximum gap observed
    (empirically 0: the relaxation is tight). *)

val e11_latency : ?n:int -> unit -> int
(** E11: combine latency under unit hop latency for the three strategy
    archetypes.  Returns 1 iff the expected latency ordering holds. *)

val e12_scaling : ?requests:int -> unit -> int
(** E12: messages per request as the tree grows, per strategy.  Returns
    1 iff the expected scaling shape holds. *)

val e13_timed_leases : ?n:int -> unit -> int
(** E13: RWW vs time-based (TTL) leases on a phased workload under
    virtual time.  Returns 1 iff RWW is within 2x of the best
    hindsight-tuned TTL. *)

val e14_cost_profile : ?n:int -> unit -> int
(** E14: distribution of per-request message costs under RWW.  Returns
    1 iff combine costs fall and write costs rise with the read
    fraction. *)

val e15_dht_load_spread : ?n_attrs:int -> unit -> int
(** E15: per-machine load with one shared aggregation tree vs SDIMS-style
    per-attribute DHT trees.  Returns 1 iff the DHT configuration has
    the flatter load profile. *)

val e16_fault_sweep : ?requests:int -> unit -> int
(** E16: message cost and combine latency vs loss rate on line, star
    and binary trees, through the reliable transport under a seeded
    fault plan.  Returns 1 iff the lossless wire costs exactly one ack
    per data frame, loss only adds wire overhead and latency, and every
    run is causally consistent. *)

val e21_churn_sweep : ?requests:int -> unit -> int
(** E21: message cost and ghost-log staleness vs membership churn rate,
    with churn synthesized against a Plaxton overlay
    ({!Dht.Plaxton.churn_order}) and healed by the Merkle anti-entropy
    pass.  Returns 1 iff every rate is causally consistent, repair
    converges to zero divergence, and positive rates exercise the
    depart/join machinery. *)
