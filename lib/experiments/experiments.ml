(* The per-figure/per-theorem experiments of EXPERIMENTS.md.  Each
   function prints a table reproducing one artifact of the paper and
   returns a scalar headline (used both by the harness summary and by
   the bechamel timing wrappers in [main.ml]). *)

module Sm = Prng.Splitmix
module M = Oat.Mechanism.Make (Agg.Ops.Sum)
module T = Analysis.Table
module Cm = Offline.Cost_model
module G = Workload.Generate

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* E1: Figure 2 — the per-edge cost table, measured on the wire.       *)

(* A policy that grants eagerly and releases at the first opportunity:
   needed to exhibit the noop-release row of Figure 2, which RWW never
   produces (Lemma 4.1). *)
let eager_break_policy ~node_id:_ ~nbrs:_ =
  {
    Oat.Policy.name = "eager-break";
    on_combine = (fun _ -> ());
    on_write = (fun _ -> ());
    probe_rcvd = (fun _ ~from:_ -> ());
    response_rcvd = (fun _ ~flag:_ ~from:_ -> ());
    update_rcvd = (fun _ ~from:_ -> ());
    release_rcvd = (fun _ ~from:_ -> ());
    set_lease = (fun _ ~target:_ -> true);
    break_lease = (fun _ ~target:_ -> true);
    release_policy = (fun _ ~target:_ -> ());
  }

type e1_row = {
  before : bool;
  req : Cm.req;
  after : bool;
  paper_cost : int;
  scenario : unit -> int * bool;  (* measured cost on the focal pair, lease after *)
}

let e1_rows () =
  let two () = M.create (Tree.Build.two_nodes ()) ~policy:Oat.Rww.policy in
  let never () =
    M.create (Tree.Build.two_nodes ()) ~policy:Oat.Ab_policy.never_lease
  in
  let path3 policy = M.create (Tree.Build.path 3) ~policy in
  let measure sys ~pair:(u, v) f =
    M.reset_message_counters sys;
    f ();
    (M.cost_between sys u v, M.granted sys u v)
  in
  [
    {
      before = false;
      req = Cm.R;
      after = false;
      paper_cost = 2;
      scenario =
        (fun () ->
          let sys = never () in
          measure sys ~pair:(0, 1) (fun () -> ignore (M.combine_sync sys ~node:1)));
    };
    {
      before = false;
      req = Cm.R;
      after = true;
      paper_cost = 2;
      scenario =
        (fun () ->
          let sys = two () in
          measure sys ~pair:(0, 1) (fun () -> ignore (M.combine_sync sys ~node:1)));
    };
    {
      before = false;
      req = Cm.W;
      after = false;
      paper_cost = 0;
      scenario =
        (fun () ->
          let sys = two () in
          measure sys ~pair:(0, 1) (fun () -> M.write_sync sys ~node:0 1.0));
    };
    {
      before = false;
      req = Cm.N;
      after = false;
      paper_cost = 0;
      scenario =
        (fun () ->
          (* a write at node 2 is a noop for the unleased pair (0,1) *)
          let sys = path3 Oat.Rww.policy in
          measure sys ~pair:(0, 1) (fun () -> M.write_sync sys ~node:2 1.0));
    };
    {
      before = true;
      req = Cm.R;
      after = true;
      paper_cost = 0;
      scenario =
        (fun () ->
          let sys = two () in
          ignore (M.combine_sync sys ~node:1);
          measure sys ~pair:(0, 1) (fun () -> ignore (M.combine_sync sys ~node:1)));
    };
    {
      before = true;
      req = Cm.W;
      after = false;
      paper_cost = 2;
      scenario =
        (fun () ->
          let sys = two () in
          ignore (M.combine_sync sys ~node:1);
          M.write_sync sys ~node:0 1.0;
          measure sys ~pair:(0, 1) (fun () -> M.write_sync sys ~node:0 2.0));
    };
    {
      before = true;
      req = Cm.W;
      after = true;
      paper_cost = 1;
      scenario =
        (fun () ->
          let sys = two () in
          ignore (M.combine_sync sys ~node:1);
          measure sys ~pair:(0, 1) (fun () -> M.write_sync sys ~node:0 1.0));
    };
    {
      before = true;
      req = Cm.N;
      after = false;
      paper_cost = 1;
      scenario =
        (fun () ->
          (* eager policy: a write at node 2 (noop for pair (0,1)) gives
             node 1 the opportunity to release its lease from 0 *)
          let sys = path3 eager_break_policy in
          ignore (M.combine_sync sys ~node:1);
          measure sys ~pair:(0, 1) (fun () -> M.write_sync sys ~node:2 1.0));
    };
    {
      before = true;
      req = Cm.N;
      after = true;
      paper_cost = 0;
      scenario =
        (fun () ->
          let sys = path3 Oat.Rww.policy in
          ignore (M.combine_sync sys ~node:1);
          measure sys ~pair:(0, 1) (fun () -> M.write_sync sys ~node:2 1.0));
    };
  ]

let e1_figure2 () =
  section "E1. Figure 2: per-edge message costs of a lease-based algorithm";
  Printf.printf
    "Each row drives a live system into the row's (lease state, request)\n\
     configuration and counts actual messages on the focal ordered pair.\n";
  let t =
    T.create
      ~columns:
        [
          ("granted before", T.Left);
          ("request", T.Left);
          ("granted after", T.Left);
          ("paper cost", T.Right);
          ("measured", T.Right);
          ("match", T.Left);
        ]
  in
  let mismatches = ref 0 in
  List.iter
    (fun row ->
      let measured, lease_after = row.scenario () in
      let ok = measured = row.paper_cost && lease_after = row.after in
      if not ok then incr mismatches;
      T.add_row t
        [
          string_of_bool row.before;
          Cm.req_to_string row.req;
          string_of_bool row.after;
          T.fint row.paper_cost;
          T.fint measured;
          (if ok then "yes" else "NO");
        ])
    (e1_rows ());
  T.print t;
  Printf.printf "mismatching rows: %d / 9\n" !mismatches;
  !mismatches

(* ------------------------------------------------------------------ *)
(* E2: Figure 4 — the product state diagram.                           *)

let e2_figure4 () =
  section "E2. Figure 4: (OPT, RWW) product transition system";
  let t =
    T.create
      ~columns:
        [
          ("from", T.Left);
          ("request", T.Left);
          ("to", T.Left);
          ("RWW cost", T.Right);
          ("OPT cost", T.Right);
        ]
  in
  List.iter
    (fun (tr : Lp.Transition_system.transition) ->
      T.add_row t
        [
          Printf.sprintf "S(%d,%d)" tr.source.opt tr.source.rww;
          Cm.req_to_string tr.req;
          Printf.sprintf "S(%d,%d)" tr.target.opt tr.target.rww;
          T.fint tr.rww_cost;
          T.fint tr.opt_cost;
        ])
    Lp.Transition_system.transitions;
  T.print t;
  let n = List.length Lp.Transition_system.transitions in
  Printf.printf
    "%d non-trivial transitions (paper's Figure 5 has 21 inequalities)\n" n;
  n

(* ------------------------------------------------------------------ *)
(* E3: Figure 5 — the linear program.                                  *)

let e3_figure5 () =
  section "E3. Figure 5: linear program for the competitive ratio";
  Printf.printf "literal rows = machine-derived rows: %b\n"
    (Lp.Fig5.rows_coincide ());
  (match Lp.Fig5.solve () with
  | Error e -> Format.printf "LP failed: %a@." Lp.Simplex.pp_error e
  | Ok { c; phi } ->
    let t =
      T.create
        ~columns:[ ("quantity", T.Left); ("paper", T.Right); ("simplex", T.Right) ]
    in
    T.add_row t [ "c (competitive factor)"; "5/2"; T.ffloat ~decimals:4 c ];
    List.iter
      (fun ((st : Lp.Transition_system.state), value) ->
        let paper =
          Lp.Fig5.paper_solution.(Lp.Fig5.var_index (`Phi st))
        in
        T.add_row t
          [
            Printf.sprintf "Phi(%d,%d)" st.opt st.rww;
            T.ffloat ~decimals:2 paper;
            T.ffloat ~decimals:4 value;
          ])
      phi;
    T.print t;
    Printf.printf
      "(potentials need not be unique; only c* is — the paper's Phi is one\n\
      \ feasible certificate, checked below)\n");
  Printf.printf "paper's (c, Phi) feasible for all 21 rows: %b\n"
    (Lp.Fig5.paper_solution_feasible ());
  (* Tightness: capping c below 5/2 must be infeasible. *)
  let p = Lp.Fig5.problem Lp.Fig5.literal_rows in
  let cap = Array.make (Array.length p.Lp.Simplex.objective) 0.0 in
  cap.(Lp.Fig5.var_index `C) <- 1.0;
  let capped =
    { p with Lp.Simplex.constraints = (cap, 2.4999) :: p.Lp.Simplex.constraints }
  in
  let tight =
    match Lp.Simplex.solve capped with Error Lp.Simplex.Infeasible -> true | _ -> false
  in
  Printf.printf "c <= 2.4999 infeasible (5/2 is optimal): %b\n" tight;
  match Lp.Fig5.solve () with Ok { c; _ } -> c | Error _ -> nan

(* ------------------------------------------------------------------ *)
(* E4/E5: Theorems 1 and 2 — competitive ratios on real runs.          *)

let e4_trees rng =
  [
    ("two-node", Tree.Build.two_nodes ());
    ("path-8", Tree.Build.path 8);
    ("star-9", Tree.Build.star 9);
    ("binary-15", Tree.Build.binary 15);
    ("caterpillar-3x3", Tree.Build.caterpillar ~spine:3 ~legs:3);
    ("random-16", Tree.Build.random rng 16);
  ]

let e4_workloads tree rng n =
  [
    ("mixed p=.10", G.mixed { G.default_spec with n_requests = n; read_fraction = 0.1 } tree rng);
    ("mixed p=.25", G.mixed { G.default_spec with n_requests = n; read_fraction = 0.25 } tree rng);
    ("mixed p=.50", G.mixed { G.default_spec with n_requests = n; read_fraction = 0.5 } tree rng);
    ("mixed p=.75", G.mixed { G.default_spec with n_requests = n; read_fraction = 0.75 } tree rng);
    ("mixed p=.90", G.mixed { G.default_spec with n_requests = n; read_fraction = 0.9 } tree rng);
    ("hotspot", G.hotspot tree rng ~n);
    ("phased", G.phased tree rng ~n ~phase_len:(max 1 (n / 8)));
    ("migrating", G.migrating tree rng ~n ~spot_moves:8);
  ]

let e4_theorem1 ?(n = 2000) () =
  section "E4. Theorem 1: RWW vs offline lease-based OPT (bound: 5/2)";
  let rng = Sm.create 42 in
  let t =
    T.create
      ~columns:
        [
          ("tree", T.Left);
          ("workload", T.Left);
          ("RWW msgs", T.Right);
          ("OPT msgs", T.Right);
          ("ratio", T.Right);
        ]
  in
  let worst = ref 0.0 in
  List.iter
    (fun (tname, tree) ->
      List.iter
        (fun (wname, sigma) ->
          let run = Analysis.Ratio.measure tree ~policy:Oat.Rww.policy sigma in
          let r = Analysis.Ratio.vs_opt_lease run in
          if r > !worst then worst := r;
          T.add_row t
            [
              tname;
              wname;
              T.fint run.Analysis.Ratio.online_cost;
              T.fint run.Analysis.Ratio.opt_lease_cost;
              T.fratio r;
            ])
        (e4_workloads tree rng n);
      T.add_separator t)
    (e4_trees rng);
  (* The tight instance. *)
  let sigma = G.rww_worst_case ~rounds:(n / 3) in
  let run =
    Analysis.Ratio.measure (Tree.Build.two_nodes ()) ~policy:Oat.Rww.policy sigma
  in
  let r = Analysis.Ratio.vs_opt_lease run in
  if r > !worst then worst := r;
  T.add_row t
    [
      "two-node";
      "adversarial RWW";
      T.fint run.Analysis.Ratio.online_cost;
      T.fint run.Analysis.Ratio.opt_lease_cost;
      T.fratio r;
    ];
  T.print t;
  Printf.printf "max ratio observed: %.3f  (Theorem 1 bound: 2.500) -> %s\n"
    !worst
    (if !worst <= 2.5 +. 1e-9 then "HOLDS" else "VIOLATED");
  !worst

let e5_theorem2 ?(n = 2000) () =
  section "E5. Theorem 2: RWW vs nice lower bound (bound: 5)";
  Printf.printf
    "The nice bound counts completed write-to-combine epochs per ordered\n\
     pair; the trailing epoch is not counted, so the guarantee is\n\
     cost <= 5*bound + 5*pairs.\n";
  let rng = Sm.create 43 in
  let t =
    T.create
      ~columns:
        [
          ("tree", T.Left);
          ("workload", T.Left);
          ("RWW msgs", T.Right);
          ("nice bound", T.Right);
          ("ratio", T.Right);
          ("within bound", T.Left);
        ]
  in
  let worst = ref 0.0 in
  let all_ok = ref true in
  List.iter
    (fun (tname, tree) ->
      let pairs = List.length (Tree.ordered_pairs tree) in
      List.iter
        (fun (wname, sigma) ->
          let run = Analysis.Ratio.measure tree ~policy:Oat.Rww.policy sigma in
          let r = Analysis.Ratio.vs_nice run in
          let ok =
            run.Analysis.Ratio.online_cost
            <= (5 * run.Analysis.Ratio.nice_cost) + (5 * pairs)
          in
          if not ok then all_ok := false;
          if r > !worst && r < Float.infinity then worst := r;
          T.add_row t
            [
              tname;
              wname;
              T.fint run.Analysis.Ratio.online_cost;
              T.fint run.Analysis.Ratio.nice_cost;
              (if r = Float.infinity then "inf" else T.fratio r);
              (if ok then "yes" else "NO");
            ])
        (e4_workloads tree rng n);
      T.add_separator t)
    (e4_trees rng);
  T.print t;
  Printf.printf "Theorem 2 bound %s on every run\n"
    (if !all_ok then "HOLDS" else "VIOLATED");
  !worst

(* ------------------------------------------------------------------ *)
(* E6: Theorem 3 — the adversarial lower bound for (a,b)-algorithms.   *)

let e6_theorem3 ?(rounds = 300) () =
  section "E6. Theorem 3: adversarial ratio of (a,b)-algorithms (lower bound: 5/2)";
  Printf.printf
    "Each (a,b)-algorithm runs against its own adversary (a combines at v,\n\
     b writes at u, repeated) on the 2-node tree.  Predicted asymptotic\n\
     ratio: (2a+b+1)/min(2a, b, 3).\n";
  let t =
    T.create
      ~columns:
        [
          ("a", T.Right);
          ("b", T.Right);
          ("online", T.Right);
          ("OPT", T.Right);
          ("measured", T.Right);
          ("predicted", T.Right);
        ]
  in
  let best = ref (Float.infinity, (0, 0)) in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let sigma = G.adversarial_ab ~a ~b ~rounds in
          let run =
            Analysis.Ratio.measure (Tree.Build.two_nodes ())
              ~policy:(Oat.Ab_policy.policy ~a ~b)
              sigma
          in
          let r = Analysis.Ratio.vs_opt_lease run in
          let predicted =
            float_of_int ((2 * a) + b + 1)
            /. float_of_int (min (2 * a) (min b 3))
          in
          if r < fst !best then best := (r, (a, b));
          T.add_row t
            [
              T.fint a;
              T.fint b;
              T.fint run.Analysis.Ratio.online_cost;
              T.fint run.Analysis.Ratio.opt_lease_cost;
              T.fratio r;
              T.fratio predicted;
            ])
        [ 1; 2; 3; 4 ];
      T.add_separator t)
    [ 1; 2; 3; 4 ];
  T.print t;
  let r, (a, b) = !best in
  Printf.printf
    "best (a,b) = (%d,%d) at ratio %.3f — the minimum over the class is\n\
     achieved by RWW's (1,2) and equals the 5/2 bound (Theorem 3)\n"
    a b r;
  r

(* ------------------------------------------------------------------ *)
(* E7: Section 1 motivation — static strategies vs RWW across regimes. *)

let e7_motivation ?(n = 3000) () =
  section "E7. Motivation: message cost vs read fraction (static vs adaptive)";
  let tree = Tree.Build.kary ~k:3 40 in
  let fractions = [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ] in
  let algos = Baselines.Algorithm.all_static_and_adaptive in
  let t =
    T.create
      ~columns:
        (("p(read)", T.Right)
        :: List.map (fun (name, _) -> (name, T.Right)) algos
        @ [ ("best static", T.Left) ])
  in
  let rww_never_worst = ref true in
  List.iter
    (fun p ->
      let sigma =
        G.mixed
          { G.default_spec with n_requests = n; read_fraction = p }
          tree (Sm.create (int_of_float (p *. 1000.0) + 7))
      in
      let costs =
        List.map
          (fun (name, make) -> (name, Baselines.Algorithm.run (make tree) sigma))
          algos
      in
      let astro = List.assoc "astrolabe" costs
      and mds = List.assoc "mds-2" costs
      and rww = List.assoc "rww" costs in
      (* Allow the one-time lease warm-up (a few probe rounds), which
         dominates only at the degenerate all-read/all-write corners
         where the matching static strategy sends nothing at all. *)
      let warmup = 8 * (Tree.n_nodes tree - 1) in
      if rww > (3 * min astro mds) + warmup then rww_never_worst := false;
      T.add_row t
        (T.ffloat ~decimals:1 p
        :: List.map (fun (_, c) -> T.fint c) costs
        @ [ (if astro <= mds then "astrolabe" else "mds-2") ]))
    fractions;
  T.print t;
  Printf.printf
    "shape check: astrolabe wins read-heavy, mds-2 wins write-heavy, and\n\
     RWW stays within 3x of the better static strategy (plus a one-time\n\
     lease warm-up) at every point: %b\n"
    !rww_never_worst;
  if !rww_never_worst then 1 else 0

(* ------------------------------------------------------------------ *)
(* E8: consistency — Lemma 3.12 and Theorem 4 at scale.                *)

let e8_consistency ?(runs = 20) () =
  section "E8. Consistency: strict (sequential) and causal (concurrent)";
  let rng = Sm.create 777 in
  let strict_violations = ref 0 in
  let causal_violations = ref 0 in
  let sum = (module Agg.Ops.Sum : Agg.Operator.S with type t = float) in
  for _ = 1 to runs do
    let tree = Tree.Build.random rng (2 + Sm.int rng 12) in
    let n = Tree.n_nodes tree in
    (* sequential + strict *)
    let sys = M.create tree ~policy:Oat.Rww.policy in
    let sigma =
      List.init 300 (fun i ->
          if Sm.bool rng then Oat.Request.write (Sm.int rng n) (float_of_int i)
          else Oat.Request.combine (Sm.int rng n))
    in
    let results = M.run_sequential sys sigma in
    strict_violations :=
      !strict_violations
      + List.length (Consistency.Strict.violations sum ~n_nodes:n results);
    (* concurrent + causal *)
    let sys = M.create ~ghost:true tree ~policy:Oat.Rww.policy in
    let requests =
      Array.init 80 (fun i ->
          let node = Sm.int rng n in
          if Sm.bool rng then fun () -> M.write sys ~node (float_of_int i)
          else fun () -> M.combine sys ~node (fun _ -> ()))
    in
    Simul.Engine.run_concurrent ~rng:(Sm.split rng) (M.network sys)
      ~handler:(M.handler sys) ~requests;
    let logs = Array.init n (fun u -> M.log sys u) in
    causal_violations :=
      !causal_violations
      + List.length (Consistency.Causal.check sum ~n_nodes:n ~logs)
  done;
  let t =
    T.create
      ~columns:[ ("check", T.Left); ("runs", T.Right); ("violations", T.Right) ]
  in
  T.add_row t
    [ "strict consistency (sequential, Lemma 3.12)"; T.fint runs;
      T.fint !strict_violations ];
  T.add_row t
    [ "causal consistency (concurrent, Theorem 4)"; T.fint runs;
      T.fint !causal_violations ];
  T.print t;
  !strict_violations + !causal_violations

(* ------------------------------------------------------------------ *)
(* E9: ablation — LP-certified competitive ratios across the (a,b)     *)
(* class, generalizing Figure 5 beyond RWW.                            *)

let e9_ab_certificates () =
  section "E9. Ablation: exact competitive ratios of (a,b)-algorithms (LP)";
  Printf.printf
    "For each (a,b)-algorithm the Figure 4/5 construction generalizes to\n\
     an (a+b)-state product machine; its LP optimum certifies an upper\n\
     bound on the competitive ratio, while the periodic adversary of\n\
     Theorem 3 gives a lower bound.  Where they meet, the exact ratio is\n\
     pinned.\n";
  let t =
    T.create
      ~columns:
        [
          ("a", T.Right);
          ("b", T.Right);
          ("LP upper bound", T.Right);
          ("adversary lower bound", T.Right);
          ("exact?", T.Left);
        ]
  in
  let best = ref (Float.infinity, (0, 0)) in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          match Lp.Ab_machine.certified_ratio ~a ~b with
          | Error e ->
            T.add_row t
              [ T.fint a; T.fint b;
                Format.asprintf "%a" Lp.Simplex.pp_error e; "-"; "-" ]
          | Ok c ->
            let adv = Lp.Ab_machine.adversarial_asymptote ~a ~b in
            if c < fst !best then best := (c, (a, b));
            T.add_row t
              [
                T.fint a;
                T.fint b;
                T.fratio c;
                T.fratio adv;
                (if Float.abs (c -. adv) < 1e-6 then "yes" else "no (stronger adversary exists)");
              ])
        [ 1; 2; 3; 4 ];
      T.add_separator t)
    [ 1; 2; 3; 4 ];
  T.print t;
  let c, (a, b) = !best in
  Printf.printf
    "class minimum: (a,b) = (%d,%d) at c = %.3f — RWW's choice is optimal\n\
     within the class, and for a >= 3 the LP exposes adversaries stronger\n\
     than the periodic one (e.g. R R W repeated holds streak counters\n\
     below threshold forever while OPT keeps the lease at cost 1/round).\n"
    a b c;
  c

(* ------------------------------------------------------------------ *)
(* E10: ablation — how loose is the per-edge relaxation of OPT?        *)

let e10_coupling_gap () =
  section "E10. Ablation: per-edge OPT relaxation vs globally-coupled optimum";
  Printf.printf
    "The offline bound used by E4 relaxes Lemma 3.2's coupling between a\n\
     node's edges.  Here the exact coupled optimum is computed by DP over\n\
     all closed lease configurations (exhaustive, n <= %d) and compared.\n"
    Offline.Opt_coupled.max_nodes;
  let rng = Sm.create 314 in
  let t =
    T.create
      ~columns:
        [
          ("tree", T.Left);
          ("requests", T.Right);
          ("per-edge OPT", T.Right);
          ("coupled OPT", T.Right);
          ("gap", T.Right);
          ("RWW (upper)", T.Right);
        ]
  in
  let max_gap = ref 0 in
  List.iter
    (fun (name, tree) ->
      List.iter
        (fun len ->
          let n = Tree.n_nodes tree in
          let sigma =
            List.init len (fun i ->
                if Sm.bool rng then Oat.Request.write (Sm.int rng n) (float_of_int i)
                else Oat.Request.combine (Sm.int rng n))
          in
          let per_edge, coupled = Offline.Opt_coupled.gap tree sigma in
          let sys = M.create tree ~policy:Oat.Rww.policy in
          ignore (M.run_sequential sys sigma);
          let rww = M.message_total sys in
          if coupled - per_edge > !max_gap then max_gap := coupled - per_edge;
          T.add_row t
            [
              name;
              T.fint len;
              T.fint per_edge;
              T.fint coupled;
              T.fint (coupled - per_edge);
              T.fint rww;
            ])
        [ 30; 80 ])
    [
      ("two-node", Tree.Build.two_nodes ());
      ("path-4", Tree.Build.path 4);
      ("star-5", Tree.Build.star 5);
      ("binary-7", Tree.Build.binary 7);
      ("random-8", Tree.Build.random (Sm.create 55) 8);
    ];
  T.print t;
  Printf.printf
    "max gap observed: %d — the per-edge relaxation is empirically TIGHT:\n\
     the lease (w,u) that closure requires below (u,v) sees a superset of\n\
     (u,v)'s combines and a subset of its writes, so per-edge optima can\n\
     always be assembled into a closed global schedule.  The E4 ratios\n\
     therefore compare RWW against the exact lease-based optimum.\n"
    !max_gap;
  !max_gap

(* ------------------------------------------------------------------ *)
(* E11: latency — the other half of the Section 1 motivation.          *)

let e11_latency ?(n = 1500) () =
  section "E11. Latency: combine completion time under unit hop latency";
  Printf.printf
    "The paper's introduction also argues in terms of latency: a strategy\n\
     tuned for writes makes reads pay a full-tree round trip.  Under the\n\
     virtual clock (1 time unit per hop), combine latency is measured for\n\
     the lease-policy equivalents of each strategy.\n";
  let tree = Tree.Build.kary ~k:3 40 in
  let policies =
    [
      ("always (astrolabe-like)", Oat.Ab_policy.always_lease);
      ("never (mds-2-like)", Oat.Ab_policy.never_lease);
      ("rww", Oat.Rww.policy);
    ]
  in
  let t =
    T.create
      ~columns:
        [
          ("policy", T.Left);
          ("p(read)", T.Right);
          ("mean lat", T.Right);
          ("p95 lat", T.Right);
          ("max lat", T.Right);
          ("messages", T.Right);
        ]
  in
  let shape_ok = ref true in
  List.iter
    (fun p ->
      let sigma =
        G.mixed
          { G.default_spec with n_requests = n; read_fraction = p }
          tree
          (Sm.create (1000 + int_of_float (p *. 10.0)))
      in
      let results =
        List.map
          (fun (name, policy) -> (name, Analysis.Latency.run tree ~policy sigma))
          policies
      in
      List.iter
        (fun (name, r) ->
          let s = Analysis.Latency.summary r in
          T.add_row t
            [
              name;
              T.ffloat ~decimals:1 p;
              T.ffloat s.Analysis.Stats.mean;
              T.ffloat s.Analysis.Stats.p95;
              T.ffloat s.Analysis.Stats.max;
              T.fint r.Analysis.Latency.messages;
            ])
        results;
      T.add_separator t;
      (* shape: warm always-lease reads are instant; never-lease reads pay
         a deep round trip; RWW sits at or below never-lease. *)
      let mean name = (Analysis.Latency.summary (List.assoc name results)).Analysis.Stats.mean in
      if not (mean "always (astrolabe-like)" < 0.5) then shape_ok := false;
      if not (mean "never (mds-2-like)" > 2.0) then shape_ok := false;
      if not (mean "rww" <= mean "never (mds-2-like)" +. 1e-9) then shape_ok := false)
    [ 0.3; 0.6; 0.9 ];
  T.print t;
  Printf.printf
    "shape check (always ~ 0, never pays round trips, rww <= never): %b\n"
    !shape_ok;
  if !shape_ok then 1 else 0

(* ------------------------------------------------------------------ *)
(* E12: scaling — per-request cost as the tree grows.                  *)

let e12_scaling ?(requests = 1500) () =
  section "E12. Scaling: messages per request vs tree size (binary trees)";
  let t =
    T.create
      ~columns:
        [
          ("n", T.Right);
          ("astrolabe/req", T.Right);
          ("mds-2/req", T.Right);
          ("rww/req", T.Right);
          ("OPT bound/req", T.Right);
          ("rww/OPT", T.Right);
        ]
  in
  let shape_ok = ref true in
  List.iter
    (fun n ->
      let tree = Tree.Build.binary n in
      let sigma =
        G.mixed
          { G.default_spec with n_requests = requests; read_fraction = 0.5 }
          tree (Sm.create (9000 + n))
      in
      let per maker =
        float_of_int (Baselines.Algorithm.run (maker tree) sigma)
        /. float_of_int requests
      in
      let astro = per Baselines.Algorithm.astrolabe in
      let mds = per Baselines.Algorithm.mds2 in
      let rww = per Baselines.Algorithm.rww in
      let opt =
        float_of_int (Offline.Opt_lease.total tree sigma) /. float_of_int requests
      in
      if rww > 2.5 *. opt +. 1e-9 then shape_ok := false;
      if n >= 15 && not (rww < Float.min astro mds) then shape_ok := false;
      T.add_row t
        [
          T.fint n;
          T.ffloat astro;
          T.ffloat mds;
          T.ffloat rww;
          T.ffloat opt;
          T.fratio (rww /. opt);
        ])
    [ 7; 15; 31; 63; 127 ];
  T.print t;
  Printf.printf
    "shape check: static strategies grow linearly with n on mixed traffic;\n\
     RWW stays below both and within 5/2 of the offline bound: %b\n"
    !shape_ok;
  if !shape_ok then 1 else 0

(* ------------------------------------------------------------------ *)
(* E13: related work — time-based leases vs RWW's write-count leases.  *)

let e13_timed_leases ?(n = 1200) () =
  section "E13. Related work: time-based (Gray-Cheriton-style) leases vs RWW";
  Printf.printf
    "Time-based leases expire after a TTL of read inactivity; RWW reacts\n\
     to the write/read pattern itself.  Phased workload, unit hop latency,\n\
     one time unit between requests.\n";
  let tree = Tree.Build.kary ~k:3 30 in
  let sigma =
    G.phased tree (Sm.create 4242) ~n ~phase_len:(n / 8)
  in
  let t =
    T.create
      ~columns:
        [
          ("policy", T.Left);
          ("messages", T.Right);
          ("mean lat", T.Right);
          ("p95 lat", T.Right);
        ]
  in
  let runs =
    ("rww", Analysis.Latency.run ~inter_arrival:1.0 tree ~policy:Oat.Rww.policy sigma)
    :: List.map
         (fun ttl ->
           ( Printf.sprintf "timed ttl=%g" ttl,
             Analysis.Latency.run_timed ~inter_arrival:1.0 tree
               ~policy:(fun ~now -> Oat.Timed_policy.policy ~now ~ttl)
               sigma ))
         [ 5.0; 20.0; 100.0; 1000.0 ]
  in
  List.iter
    (fun (name, r) ->
      let s = Analysis.Latency.summary r in
      T.add_row t
        [
          name;
          T.fint r.Analysis.Latency.messages;
          T.ffloat s.Analysis.Stats.mean;
          T.ffloat s.Analysis.Stats.p95;
        ])
    runs;
  T.print t;
  let cost name = (List.assoc name runs).Analysis.Latency.messages in
  let rww = cost "rww" in
  let best_timed =
    List.fold_left min max_int
      (List.filter_map
         (fun (name, r) ->
           if name = "rww" then None else Some r.Analysis.Latency.messages)
         runs)
  in
  Printf.printf
    "RWW: %d messages; best TTL (tuned with hindsight): %d.  RWW is\n\
     within %.2fx of the best statically tuned TTL without any tuning\n\
     knob — the adaptivity argument of the paper's introduction, applied\n\
     to the related-work lease family.\n"
    rww best_timed
    (float_of_int rww /. float_of_int (max 1 best_timed));
  if rww <= 2 * best_timed then 1 else 0

(* ------------------------------------------------------------------ *)
(* E14: per-request cost distribution under RWW.                       *)

let e14_cost_profile ?(n = 3000) () =
  section "E14. Per-request message-cost distribution (RWW, binary-31)";
  Printf.printf
    "The competitive bound is about totals; this table shows how the cost\n\
     is distributed over individual requests (combines amortize to near\n\
     zero as leases warm; writes pay for the lease structure they cross).\n";
  let tree = Tree.Build.binary 31 in
  let t =
    T.create
      ~columns:
        [
          ("p(read)", T.Right);
          ("op", T.Left);
          ("mean", T.Right);
          ("p50", T.Right);
          ("p95", T.Right);
          ("max", T.Right);
        ]
  in
  let ok = ref true in
  let prev_combine = ref Float.infinity and prev_write = ref 0.0 in
  List.iter
    (fun p ->
      let sigma =
        G.mixed
          { G.default_spec with n_requests = n; read_fraction = p }
          tree
          (Sm.create (int_of_float (p *. 100.0) + 3))
      in
      let prof = Analysis.Profile.run tree ~policy:Oat.Rww.policy sigma in
      let row op (s : Analysis.Stats.summary) =
        T.add_row t
          [
            T.ffloat ~decimals:1 p;
            op;
            T.ffloat s.Analysis.Stats.mean;
            T.ffloat s.Analysis.Stats.p50;
            T.ffloat s.Analysis.Stats.p95;
            T.ffloat s.Analysis.Stats.max;
          ]
      in
      let cs = Analysis.Profile.combine_summary prof in
      let ws = Analysis.Profile.write_summary prof in
      row "combine" cs;
      row "write" ws;
      T.add_separator t;
      (* shape: as traffic gets more read-heavy, RWW shifts cost from
         combines (leases stay warm) onto writes (updates pushed). *)
      if cs.Analysis.Stats.mean > !prev_combine then ok := false;
      if ws.Analysis.Stats.mean < !prev_write then ok := false;
      prev_combine := cs.Analysis.Stats.mean;
      prev_write := ws.Analysis.Stats.mean)
    [ 0.2; 0.5; 0.8 ];
  T.print t;
  Printf.printf
    "shape check (combine cost falls and write cost rises with the read\n\
     fraction): %b\n"
    !ok;
  if !ok then 1 else 0

(* ------------------------------------------------------------------ *)
(* E15: SDIMS-style DHT trees — spreading aggregation load.            *)

let e15_dht_load_spread ?(n_attrs = 64) () =
  section "E15. DHT trees: per-attribute aggregation load spreading (SDIMS)";
  Printf.printf
    "SDIMS derives one aggregation tree per attribute from the DHT so the\n\
     roots (and traffic) spread over the machines.  Same workload over 64\n\
     attributes: one shared tree vs per-attribute Plaxton trees.\n";
  let n = 32 in
  let rng = Sm.create 606 in
  let attrs = List.init n_attrs (fun i -> Printf.sprintf "attr-%02d" i) in
  let drive ~write ~combine =
    let rng = Sm.create 707 in
    List.iter
      (fun attr ->
        for i = 1 to 8 do
          write ~attr ~node:(Sm.int rng n) (float_of_int i)
        done;
        for _ = 1 to 4 do
          ignore (combine ~attr ~node:(Sm.int rng n))
        done)
      attrs
  in
  (* Shared tree: every attribute aggregates over the same k-ary tree. *)
  let module Mu = Oat.Multi.Make (Agg.Ops.Sum) in
  let shared_tree = Tree.Build.kary ~k:3 n in
  let shared = Mu.create shared_tree in
  drive
    ~write:(fun ~attr ~node v -> Mu.write shared ~attr ~node v)
    ~combine:(fun ~attr ~node -> Mu.combine shared ~attr ~node);
  let shared_load = Array.make n 0 in
  List.iter
    (fun attr ->
      let sys = Mu.instance shared ~attr in
      let module M2 = Oat.Mechanism.Make (Agg.Ops.Sum) in
      ignore sys;
      List.iter
        (fun (u, v) ->
          shared_load.(u) <-
            shared_load.(u)
            + Simul.Network.sent_on_edge
                (M2.network (Mu.instance shared ~attr))
                ~src:u ~dst:v)
        (Tree.ordered_pairs shared_tree))
    attrs;
  (* DHT trees: one Plaxton tree per attribute. *)
  let module DM = Dht.Dht_multi.Make (Agg.Ops.Sum) in
  let dm = DM.create rng ~n ~bits:12 in
  drive
    ~write:(fun ~attr ~node v -> DM.write dm ~attr ~node v)
    ~combine:(fun ~attr ~node -> DM.combine dm ~attr ~node);
  let dht_load = DM.messages_per_machine dm in
  let stats load =
    let l = Array.to_list (Array.map float_of_int load) in
    (Analysis.Stats.maximum l, Analysis.Stats.mean l)
  in
  let shared_max, shared_mean = stats shared_load in
  let dht_max, dht_mean = stats dht_load in
  let roots =
    List.sort_uniq compare (List.map (fun a -> DM.root_of dm ~attr:a) attrs)
  in
  let t =
    T.create
      ~columns:
        [
          ("configuration", T.Left);
          ("total msgs", T.Right);
          ("mean load/machine", T.Right);
          ("max load/machine", T.Right);
          ("max/mean", T.Right);
        ]
  in
  T.add_row t
    [
      "one shared tree";
      T.fint (Array.fold_left ( + ) 0 shared_load);
      T.ffloat shared_mean;
      T.ffloat shared_max;
      T.fratio (shared_max /. Float.max 1.0 shared_mean);
    ];
  T.add_row t
    [
      Printf.sprintf "DHT trees (%d roots)" (List.length roots);
      T.fint (Array.fold_left ( + ) 0 dht_load);
      T.ffloat dht_mean;
      T.ffloat dht_max;
      T.fratio (dht_max /. Float.max 1.0 dht_mean);
    ];
  T.print t;
  let balanced =
    dht_max /. Float.max 1.0 dht_mean < shared_max /. Float.max 1.0 shared_mean
  in
  Printf.printf
    "shape check (DHT trees flatten the per-machine load profile): %b\n"
    balanced;
  if balanced then 1 else 0

(* ------------------------------------------------------------------ *)
(* E16: fault sweep — the price of restoring reliability.              *)

let e16_fault_sweep ?(requests = 150) () =
  section "E16. Fault sweep: wire cost and combine latency vs loss rate";
  Printf.printf
    "The mechanism's correctness precondition is reliable FIFO channels\n\
     (Section 3); Fault.Runner restores it over a lossy wire with\n\
     sequence numbers, cumulative acks and retransmission.  Logical\n\
     protocol cost is unchanged by loss — the wire pays instead.  Every\n\
     run is seeded, drained to quiescence and checked causally.\n\
     Reproduce any row with:\n\
     oat-cli simulate --faults drop=DROP --seed 2026 --tree TREE -n 15\n";
  let module R = Fault.Runner.Make (Agg.Ops.Sum) in
  let t =
    T.create
      ~columns:
        [
          ("tree", T.Left);
          ("drop", T.Right);
          ("logical", T.Right);
          ("physical", T.Right);
          ("retransmits", T.Right);
          ("exact", T.Right);
          ("partial", T.Right);
          ("combine lat", T.Right);
          ("causal", T.Left);
        ]
  in
  let ok = ref true in
  let rates = [ 0.0; 0.05; 0.1; 0.2 ] in
  List.iter
    (fun (name, tree) ->
      let sigma =
        G.mixed { G.default_spec with n_requests = requests } tree
          (Sm.create 2026)
      in
      let outcomes =
        List.map
          (fun drop ->
            let plan =
              Fault.Plan.create ~seed:2026 { Fault.Plan.none with drop }
            in
            let o = R.run ~plan ~tree ~policy:Oat.Rww.policy ~requests:sigma () in
            T.add_row t
              [
                name;
                T.ffloat ~decimals:2 drop;
                T.fint o.R.logical_msgs;
                T.fint o.R.physical_msgs;
                T.fint o.R.retransmits;
                T.fint o.R.exact;
                T.fint o.R.partial;
                T.ffloat o.R.mean_combine_latency;
                (if o.R.causal_violations = 0 then "ok" else "VIOLATED");
              ];
            if o.R.causal_violations > 0 then ok := false;
            o)
          rates
      in
      T.add_separator t;
      (* Shape: a lossless wire costs exactly one ack per data frame and
         never retransmits; loss only ever adds wire overhead on top of
         an unchanged logical cost. *)
      match outcomes with
      | free :: rest ->
        if free.R.retransmits <> 0 then ok := false;
        if free.R.physical_msgs <> 2 * free.R.logical_msgs then ok := false;
        let overhead (o : R.outcome) =
          float_of_int o.R.physical_msgs
          /. float_of_int (max 1 o.R.logical_msgs)
        in
        List.iter
          (fun o ->
            if o.R.retransmits = 0 then ok := false;
            if overhead o <= overhead free then ok := false;
            if o.R.mean_combine_latency < free.R.mean_combine_latency then
              ok := false)
          rest
      | [] -> ok := false)
    [
      ("line-15", Tree.Build.path 15);
      ("star-15", Tree.Build.star 15);
      ("binary-15", Tree.Build.binary 15);
    ];
  T.print t;
  Printf.printf
    "shape check (lossless wire = 2x logical and zero retransmits; loss\n\
     only adds wire overhead and combine latency, never causal damage): %b\n"
    !ok;
  if !ok then 1 else 0

(* ------------------------------------------------------------------ *)
(* E21: churn sweep — message cost and staleness vs churn rate.        *)

let e21_churn_sweep ?(requests = 150) () =
  section "E21. Churn sweep: message cost and staleness vs churn rate";
  Printf.printf
    "Membership churn synthesized against a Plaxton overlay (the SDIMS\n\
     substrate): Fault.Plan.synth_churn rolls the Tree.Dyn automaton\n\
     forward at one membership event per 1/rate time units, choosing\n\
     who churns by Dht.Plaxton.churn_order — the overlay's periphery\n\
     (shortest prefix match against the attribute key) churns first.\n\
     Each run drives departs and joins through the lease-safe handoff\n\
     (epoch-fenced, ghost history carried to the handoff neighbour),\n\
     then measures staleness as the ghost-log divergence left across\n\
     active edges and heals it with the Merkle anti-entropy pass.\n\
     Reproduce any row with:\n\
     oat-cli simulate --churn leave=..,join=.. --seed 2027 -n 31\n";
  let module R = Fault.Runner.Make (Agg.Ops.Sum) in
  let overlay = Dht.Plaxton.create (Sm.create 2027) ~n:31 ~bits:12 in
  let tree = Dht.Plaxton.tree_for_attribute overlay "load" in
  let key = Dht.Plaxton.key_of_attribute overlay "load" in
  let order = Dht.Plaxton.churn_order overlay ~key in
  let sigma =
    G.mixed { G.default_spec with n_requests = requests } tree (Sm.create 2027)
  in
  let horizon = 2.0 *. float_of_int requests in
  let t =
    T.create
      ~columns:
        [
          ("rate", T.Right);
          ("leaves", T.Right);
          ("joins", T.Right);
          ("issued", T.Right);
          ("skipped", T.Right);
          ("logical", T.Right);
          ("staleness", T.Right);
          ("healed", T.Right);
          ("shipped", T.Right);
          ("causal", T.Left);
        ]
  in
  let ok = ref true in
  List.iter
    (fun rate ->
      let churn =
        Fault.Plan.synth_churn ~seed:2027 ~tree ~order ~rate ~horizon
      in
      let plan =
        Fault.Plan.create ~seed:2027 { Fault.Plan.none with churn }
      in
      let o =
        R.run ~plan ~repair:true ~tree ~policy:Oat.Rww.policy ~requests:sigma ()
      in
      T.add_row t
        [
          T.ffloat ~decimals:2 rate;
          T.fint o.R.leaves;
          T.fint o.R.joins;
          T.fint o.R.issued;
          T.fint o.R.skipped;
          T.fint o.R.logical_msgs;
          T.fint o.R.divergence_before;
          T.fint o.R.divergence_after;
          T.fint o.R.repair_stats.Repair.writes_shipped;
          (if o.R.causal_violations = 0 then "ok" else "VIOLATED");
        ];
      (* Shape: the causal checker is green at every churn rate, the
         anti-entropy pass always converges, the zero-rate row has no
         membership events, and positive rates actually exercise the
         depart/join machinery.  (Staleness is nonzero even at rate 0:
         ghost frontiers advance only where lease traffic flows, so the
         divergence column's floor is the propagation lag of the leased
         protocol itself, and churn rides on top of it.) *)
      if o.R.causal_violations <> 0 then ok := false;
      if o.R.divergence_after <> 0 then ok := false;
      if rate = 0.0 && o.R.leaves + o.R.joins <> 0 then ok := false;
      if rate > 0.0 && o.R.leaves + o.R.joins = 0 then ok := false)
    [ 0.0; 0.02; 0.05; 0.1 ];
  T.print t;
  Printf.printf
    "shape check (causal at every rate, anti-entropy converges to zero\n\
     divergence after every heal, positive rates churn the membership): %b\n"
    !ok;
  if !ok then 1 else 0
